#!/usr/bin/env python3
"""Newp article pages with interleaved cache joins (§2.3, Figure 1).

Builds the news-aggregator join set, populates articles, comments and
votes, and renders a page both ways: interleaved (one scan) and from
separate ranges (many gets).  Shows the raw interleaved key range —
"data necessary to render a Newp article in one contiguous range".

Run:  python examples/newp_pages.py
"""

from repro.apps.newp import NewpApp


def populate(app) -> None:
    app.author_article("bob", "101", "Why ordered caches are enough")
    app.comment("bob", "101", "c01", "liz", "strong agree")
    app.comment("bob", "101", "c02", "jim", "needs benchmarks")
    for voter in ("ann", "kay", "tom"):
        app.vote("bob", "101", voter)
    # liz earns karma from her own article's votes.
    app.author_article("liz", "200", "A reply")
    app.vote("liz", "200", "ann")
    app.vote("liz", "200", "bob")


def main() -> None:
    inter = NewpApp(interleaved=True)
    separate = NewpApp(interleaved=False)
    populate(inter)
    populate(separate)

    page = inter.read_article("bob", "101")
    print("== rendered page (interleaved, ONE scan)")
    print(f"   article: {page.text!r}")
    print(f"   votes:   {page.votes}")
    for cid, commenter, text in page.comments:
        karma = page.karma.get(commenter, 0)
        print(f"   comment {cid} by {commenter} (karma {karma}): {text!r}")

    print("\n== the raw interleaved range (note the |a |c |k |r tags)")
    for key, value in inter.server.scan("page|bob|101|", "page|bob|101}"):
        print(f"   {key}  ->  {value!r}")

    page2 = separate.read_article("bob", "101")
    assert page == page2, "both layouts must render the same page"

    inter.meter.reset()
    separate.meter.reset()
    inter.read_article("bob", "101")
    separate.read_article("bob", "101")
    print(
        f"\nRPCs per page read: interleaved={inter.meter.get('rpcs'):.0f}, "
        f"separate={separate.meter.get('rpcs'):.0f}"
    )

    # Live maintenance: a new vote on liz's article updates her karma,
    # which cascades into bob's already-materialized page.
    inter.vote("liz", "200", "zed")
    refreshed = inter.read_article("bob", "101")
    print(f"after a new vote for liz, her karma on bob's page: "
          f"{refreshed.karma['liz']}")


if __name__ == "__main__":
    main()
