#!/usr/bin/env python3
"""One application, three deployments: the unified client API.

The function below is ordinary application code against
``PequodClient`` — install a join, write base data, batch writes, read
computed ranges.  It runs, verbatim, on an in-process server, over
real TCP RPC, and on a simulated multi-server cluster; the final
observable state is identical on all three.

Run:  python examples/unified_client.py
"""

from repro.client import PequodClient, join, make_client

TIMELINE = (
    join("t|<user>|<time>|<poster>")
    .check("s|<user>|<poster>")
    .copy("p|<poster>|<time>")
)


def run_app(client: PequodClient):
    """Deployment-oblivious application code."""
    client.add_join(TIMELINE)
    client.add_join(join("karma|<author>").count("vote|<author>|<id>|<voter>"))

    client.put_many([
        ("s|ann|bob", "1"),
        ("s|ann|liz", "1"),
        ("s|cid|bob", "1"),
    ])
    client.put("p|bob|0100", "first!")
    with client.write_batch() as batch:
        batch.put("p|liz|0110", "hi ann")
        batch.put("p|bob|0120", "typo...")
        batch.put("p|bob|0120", "fixed")      # coalesces in-batch
    client.put("vote|bob|001|ann", "1")
    client.put("vote|bob|002|cid", "1")

    client.settle()   # cluster: deliver async maintenance; else no-op
    return {
        "ann": client.scan_prefix("t|ann|"),
        "cid": client.scan_prefix("t|cid|"),
        "karma(bob)": client.get("karma|bob"),
        "posts": client.count("p|", "p}"),
    }


def main() -> None:
    results = {}
    for backend in ("local", "rpc", "cluster"):
        with make_client(
            backend, base_tables=("p", "s", "vote"), compute_count=2
        ) as client:
            results[backend] = run_app(client)
            print(f"== {backend}")
            for name, value in results[backend].items():
                print(f"   {name}: {value}")

    identical = results["local"] == results["rpc"] == results["cluster"]
    print(f"\nidentical results across backends: {identical}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
