#!/usr/bin/env python3
"""A write-around deployment next to a backing database (§2).

Application writes go to the database; the database forwards changes
to the cache (Postgres-notify style); reads hit the cache, which loads
missing base ranges on demand and keeps them fresh.  With queued
notifications the eventual-consistency window is observable.

Run:  python examples/write_around_cache.py
"""

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.backing import BackingDatabase, WriteAroundDeployment


def main() -> None:
    db = BackingDatabase(synchronous_notify=False)
    cache = PequodServer(subtable_config={"t": 2})
    cache.add_join(TIMELINE_JOIN)
    app = WriteAroundDeployment(cache, db, base_tables={"p", "s"})

    # The application writes to the database only.
    app.put("s|ann|bob", "1")
    app.put("p|bob|0100", "stored durably first")
    app.drain()  # deliver DB notifications

    print("timeline (cache miss -> DB range fetch + subscription):")
    print("  ", app.scan("t|ann|", "t|ann}"))
    print(f"DB range queries so far: {db.query_count}")

    # Cached ranges are not re-read from the database.
    app.scan("t|ann|", "t|ann}")
    print(f"after a warm re-read, DB queries unchanged: {db.query_count}")

    # The asynchronous notification window: a write is visible in the
    # DB immediately, in the cache only after notifications drain.
    app.put("p|bob|0200", "async write")
    print("\nbefore drain():", app.scan("t|ann|0200", "t|ann}"))
    delivered = app.drain()
    print(f"after drain() ({delivered} notifications):",
          app.scan("t|ann|0200", "t|ann}"))

    print(f"\ncache keys: {cache.key_count()}, "
          f"cache memory: {cache.memory_bytes():,} bytes, "
          f"db rows: {len(db)}")


if __name__ == "__main__":
    main()
