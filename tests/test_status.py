"""Unit tests for join status ranges (paper §3.2)."""

import pytest

from repro.core.status import RangeState, StatusRange, StatusTable


class TestStatusRange:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            StatusRange("b", "a")
        with pytest.raises(ValueError):
            StatusRange("a", "a")

    def test_validity_with_expiry(self):
        sr = StatusRange("a", "b")
        assert sr.is_valid_at(100.0)
        sr.expires_at = 50.0
        assert sr.is_valid_at(49.9)
        assert not sr.is_valid_at(50.0)

    def test_invalidate_clears_bookkeeping(self):
        sr = StatusRange("a", "b")
        sr.pending.append(object())
        sr.expires_at = 10.0
        sr.invalidate()
        assert sr.state is RangeState.INVALID
        assert sr.pending == []
        assert sr.expires_at is None

    def test_needs_work(self):
        sr = StatusRange("a", "b")
        assert not sr.needs_work(0.0)
        sr.pending.append(object())
        assert sr.needs_work(0.0)


class TestPieces:
    def test_empty_table_is_one_gap(self):
        st = StatusTable()
        assert st.pieces("a", "z") == [("a", "z", None)]

    def test_exact_cover(self):
        st = StatusTable()
        sr = st.add(StatusRange("c", "f"))
        assert st.pieces("c", "f") == [("c", "f", sr)]

    def test_gap_range_gap(self):
        st = StatusTable()
        sr = st.add(StatusRange("c", "f"))
        pieces = st.pieces("a", "z")
        assert pieces == [("a", "c", None), ("c", "f", sr), ("f", "z", None)]

    def test_query_clipped_to_range_interior(self):
        st = StatusTable()
        sr = st.add(StatusRange("c", "f"))
        assert st.pieces("d", "e") == [("d", "e", sr)]

    def test_adjacent_ranges(self):
        st = StatusTable()
        a = st.add(StatusRange("a", "c"))
        b = st.add(StatusRange("c", "e"))
        assert st.pieces("a", "e") == [("a", "c", a), ("c", "e", b)]

    def test_empty_query(self):
        st = StatusTable()
        assert st.pieces("c", "c") == []
        assert st.pieces("d", "c") == []

    def test_find(self):
        st = StatusTable()
        sr = st.add(StatusRange("c", "f"))
        assert st.find("c") is sr
        assert st.find("e") is sr
        assert st.find("f") is None
        assert st.find("b") is None

    def test_overlap_rejected_on_add(self):
        st = StatusTable()
        st.add(StatusRange("c", "f"))
        with pytest.raises(ValueError):
            st.add(StatusRange("e", "g"))

    def test_overlapping_query(self):
        st = StatusTable()
        a = st.add(StatusRange("a", "c"))
        b = st.add(StatusRange("x", "z"))
        assert st.overlapping("b", "y") == [a, b]
        assert st.overlapping("c", "x") == []


class TestSplitAndIsolate:
    def test_split_preserves_cover(self):
        st = StatusTable()
        sr = st.add(StatusRange("a", "z"))
        right = st.split(sr, "m")
        assert (sr.lo, sr.hi) == ("a", "m")
        assert (right.lo, right.hi) == ("m", "z")
        st.check_disjoint_cover()

    def test_split_copies_state_and_pending(self):
        st = StatusTable()
        sr = st.add(StatusRange("a", "z", RangeState.INVALID))
        entry = object()
        sr.pending.append(entry)
        sr.generation = 7
        sr.expires_at = 42.0
        right = st.split(sr, "m")
        assert right.state is RangeState.INVALID
        assert right.pending == [entry]
        assert right.generation == 7
        assert right.expires_at == 42.0
        # pending lists are independent afterwards
        right.pending.clear()
        assert sr.pending == [entry]

    def test_split_point_must_be_interior(self):
        st = StatusTable()
        sr = st.add(StatusRange("a", "z"))
        with pytest.raises(ValueError):
            st.split(sr, "a")
        with pytest.raises(ValueError):
            st.split(sr, "z")

    def test_isolate_middle(self):
        st = StatusTable()
        st.add(StatusRange("a", "z"))
        parts = st.isolate("f", "m")
        assert len(parts) == 1
        assert (parts[0].lo, parts[0].hi) == ("f", "m")
        assert [((s.lo, s.hi)) for s in st.ranges()] == [
            ("a", "f"), ("f", "m"), ("m", "z"),
        ]
        st.check_disjoint_cover()

    def test_isolate_across_multiple_ranges(self):
        st = StatusTable()
        st.add(StatusRange("a", "f"))
        st.add(StatusRange("f", "m"))
        parts = st.isolate("c", "h")
        assert [(p.lo, p.hi) for p in parts] == [("c", "f"), ("f", "h")]
        st.check_disjoint_cover()

    def test_isolate_exact_fit_no_split(self):
        st = StatusTable()
        sr = st.add(StatusRange("c", "f"))
        parts = st.isolate("c", "f")
        assert parts == [sr]
        assert len(st.ranges()) == 1

    def test_remove(self):
        st = StatusTable()
        sr = st.add(StatusRange("a", "c"))
        st.remove(sr)
        assert st.pieces("a", "c") == [("a", "c", None)]
