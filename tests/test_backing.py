"""Tests for the backing database and cache deployments (paper §2)."""

from repro import PequodServer
from repro.backing import (
    BackingDatabase,
    LookasideDeployment,
    WriteAroundDeployment,
    WriteThroughDeployment,
)
from repro.core.operators import ChangeKind

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


class TestBackingDatabase:
    def test_put_get_query(self):
        db = BackingDatabase()
        db.put("p|bob|0100", "hi")
        db.put("p|ann|0050", "yo")
        assert db.get("p|bob|0100") == "hi"
        assert db.query("p|", "p}") == [("p|ann|0050", "yo"), ("p|bob|0100", "hi")]

    def test_remove(self):
        db = BackingDatabase()
        db.put("k|1", "v")
        assert db.remove("k|1")
        assert not db.remove("k|1")
        assert db.get("k|1") is None

    def test_notifications_synchronous(self):
        db = BackingDatabase()
        seen = []
        db.subscribe("p|", "p}", lambda *args: seen.append(args))
        db.put("p|bob|1", "x")
        db.put("q|other|1", "y")  # outside range
        db.remove("p|bob|1")
        assert [s[0] for s in seen] == ["p|bob|1", "p|bob|1"]
        assert seen[0][3] is ChangeKind.INSERT
        assert seen[1][3] is ChangeKind.REMOVE

    def test_notifications_queued(self):
        db = BackingDatabase(synchronous_notify=False)
        seen = []
        db.subscribe("p|", "p}", lambda *args: seen.append(args))
        db.put("p|bob|1", "x")
        assert seen == []  # not yet delivered
        assert db.hub.pending() == 1
        assert db.drain_notifications() == 1
        assert len(seen) == 1

    def test_unsubscribe_stops_delivery(self):
        db = BackingDatabase()
        seen = []
        sub = db.subscribe("p|", "p}", lambda *args: seen.append(args))
        db.put("p|1", "x")
        db.unsubscribe(sub)
        db.put("p|2", "y")
        assert len(seen) == 1

    def test_load_bulk_no_notifications(self):
        db = BackingDatabase()
        seen = []
        db.subscribe("p|", "p}", lambda *args: seen.append(args))
        db.load_bulk([("p|1", "a"), ("p|2", "b")])
        assert seen == []
        assert len(db) == 2

    def test_accounting(self):
        db = BackingDatabase()
        db.put("a|1", "x")
        db.query("a|", "a}")
        assert db.write_count == 1
        assert db.query_count == 1
        assert db.rows_returned == 1


class TestWriteAround:
    def make(self):
        db = BackingDatabase()
        srv = PequodServer()
        srv.add_join(TIMELINE)
        return WriteAroundDeployment(srv, db, base_tables={"p", "s"}), db, srv

    def test_reads_pull_base_data_from_db(self):
        dep, db, srv = self.make()
        dep.put("s|ann|bob", "1")
        dep.put("p|bob|0100", "from the db")
        got = dep.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "from the db")]
        assert db.query_count >= 2  # s range and p range were fetched

    def test_db_changes_flow_into_cache(self):
        dep, db, srv = self.make()
        dep.put("s|ann|bob", "1")
        dep.scan("t|ann|", "t|ann}")  # cache warm, subscriptions installed
        dep.put("p|bob|0200", "later post")
        got = dep.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0200|bob", "later post")]

    def test_unfetched_ranges_not_notified(self):
        dep, db, srv = self.make()
        dep.put("p|stranger|1", "x")  # nobody is looking: no cache work
        assert srv.key_count() == 0

    def test_db_removal_flows(self):
        dep, db, srv = self.make()
        dep.put("s|ann|bob", "1")
        dep.put("p|bob|0100", "x")
        dep.scan("t|ann|", "t|ann}")
        dep.remove("p|bob|0100")
        assert dep.scan("t|ann|", "t|ann}") == []

    def test_ranges_fetched_once(self):
        dep, db, srv = self.make()
        dep.put("s|ann|bob", "1")
        dep.scan("t|ann|", "t|ann}")
        queries = db.query_count
        dep.scan("t|ann|", "t|ann}")
        assert db.query_count == queries  # resident ranges are not re-read


class TestWriteAroundAsync:
    def test_eventual_consistency_window(self):
        """§2: write-around with queued notify is eventually consistent."""
        db = BackingDatabase(synchronous_notify=False)
        srv = PequodServer()
        srv.add_join(TIMELINE)
        dep = WriteAroundDeployment(srv, db, base_tables={"p", "s"})
        dep.put("s|ann|bob", "1")
        db.drain_notifications()
        dep.scan("t|ann|", "t|ann}")
        dep.put("p|bob|0100", "new post")
        # Before the notification drains, the cache is stale...
        assert dep.scan("t|ann|", "t|ann}") == []
        dep.drain()
        # ...and fresh afterwards.
        assert dep.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "new post")]


class TestWriteThrough:
    def test_read_your_own_writes(self):
        db = BackingDatabase(synchronous_notify=False)
        srv = PequodServer()
        srv.add_join(TIMELINE)
        dep = WriteThroughDeployment(srv, db, base_tables={"p", "s"})
        dep.put("s|ann|bob", "1")
        dep.put("p|bob|0100", "instant")
        assert dep.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "instant")]
        assert db.get("p|bob|0100") == "instant"


class TestLookaside:
    def test_writes_bypass_database(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        dep = LookasideDeployment(srv)
        dep.put("s|ann|bob", "1")
        dep.put("p|bob|0100", "direct")
        assert dep.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "direct")]
        assert dep.db.write_count == 0
