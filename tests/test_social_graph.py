"""Tests for the synthetic social graph generator."""

import pytest

from repro.apps.social_graph import degree_histogram, generate_graph


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_graph(100, 5, seed=3)
        b = generate_graph(100, 5, seed=3)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = generate_graph(100, 5, seed=3)
        b = generate_graph(100, 5, seed=4)
        assert a.edges != b.edges

    def test_mean_out_degree_near_target(self):
        g = generate_graph(300, 10, seed=1)
        assert 8.0 <= g.mean_out_degree() <= 10.5

    def test_no_self_follows_or_duplicates(self):
        g = generate_graph(150, 8, seed=2)
        assert all(a != b for a, b in g.edges)
        assert len(set(g.edges)) == len(g.edges)

    def test_minimum_users(self):
        with pytest.raises(ValueError):
            generate_graph(1)

    def test_adjacency_consistency(self):
        g = generate_graph(120, 6, seed=5)
        for follower, followee in g.edges:
            assert followee in g.following[follower]
            assert follower in g.followers[followee]
        assert sum(len(v) for v in g.following.values()) == len(g.edges)


class TestHeavyTail:
    def test_in_degree_is_heavy_tailed(self):
        """A few celebrities collect a large share of followers (§2.3)."""
        g = generate_graph(500, 15, seed=1)
        counts = sorted((g.follower_count(u) for u in g.users), reverse=True)
        top_1pct = sum(counts[: len(counts) // 100 or 1])
        assert top_1pct > len(g.edges) * 0.05
        assert counts[0] > 10 * (len(g.edges) / len(g.users))

    def test_celebrities_identified(self):
        g = generate_graph(400, 12, seed=1)
        threshold = g.max_follower_count() // 2
        celebs = g.celebrities(threshold)
        assert 1 <= len(celebs) < len(g.users) // 10

    def test_post_weight_increases_with_followers(self):
        g = generate_graph(300, 10, seed=1)
        popular = max(g.users, key=g.follower_count)
        lonely = min(g.users, key=g.follower_count)
        assert g.post_weight(popular) > g.post_weight(lonely)

    def test_degree_histogram_buckets(self):
        g = generate_graph(200, 5, seed=1)
        hist = degree_histogram(g, [1, 10, 100])
        assert sum(hist.values()) == 200
