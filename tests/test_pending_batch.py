"""Batched pending-log application (the ROADMAP nibble).

Subscribe-heavy mixes log one pending entry per written source key;
application used to re-execute the join once per logged key.  Runs of
contiguous keys now apply as ONE windowed re-execution per run.  These
tests prove the batched path produces byte-identical store state to
the per-key reference path, and that it actually engages.
"""

import pytest

from repro import PequodServer

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def _twin_servers():
    batched = PequodServer()
    reference = PequodServer()
    reference.engine.enable_pending_batching = False
    for srv in (batched, reference):
        srv.add_join(TIMELINE)
    return batched, reference


def _drive(srv: PequodServer, ops):
    for op in ops:
        if op[0] == "put":
            srv.put(op[1], op[2])
        elif op[0] == "remove":
            srv.remove(op[1])
        else:
            srv.scan_prefix(op[1])


def _state(srv: PequodServer):
    return srv.store.scan("", "\x7f")


def assert_identical(ops):
    batched, reference = _twin_servers()
    _drive(batched, ops)
    _drive(reference, ops)
    assert _state(batched) == _state(reference)
    return batched


def _follow_burst(users, posts_per_user=2, pre_follow=("bob",)):
    """Warm a timeline, then log a burst of follows before reading."""
    ops = []
    for name in pre_follow:
        ops.append(("put", f"s|ann|{name}", "1"))
    for name in list(pre_follow) + list(users):
        for t in range(posts_per_user):
            ops.append(("put", f"p|{name}|{t:04d}", f"{name}-{t}"))
    ops.append(("scan", "t|ann|"))  # materialize: installs lazy check
    for name in users:
        ops.append(("put", f"s|ann|{name}", "1"))  # burst -> pending log
    ops.append(("scan", "t|ann|"))  # application point
    return ops


class TestIdenticalState:
    def test_contiguous_follow_burst(self):
        srv = assert_identical(
            _follow_burst(["carl", "dan", "eve", "frank"])
        )
        stats = srv.stats.snapshot()
        assert stats.get("pending_range_batches", 0) >= 1  # batching engaged
        assert stats.get("pending_applied", 0) >= 4

    def test_burst_interleaved_with_foreign_keys(self):
        """Pre-existing follows interleave with the burst: the span
        test must split or fall back, and state stays identical."""
        ops = _follow_burst(
            ["carl", "eve"], pre_follow=("bob", "dan")
        )  # dan sits between carl and eve in the source table
        assert_identical(ops)

    def test_burst_then_unfollow_invalidates(self):
        """A remove escalates to complete invalidation; the recompute
        path and the batched path agree on the final state."""
        ops = _follow_burst(["carl", "dan", "eve"])
        ops.append(("remove", "s|ann|dan"))
        ops.append(("scan", "t|ann|"))
        assert_identical(ops)

    def test_repeated_writes_compact_then_batch(self):
        ops = _follow_burst(["carl", "dan"])
        # Rewrite the same follows between reads: compaction collapses
        # them before the run is formed.
        ops[-1:-1] = [("put", "s|ann|carl", "1"), ("put", "s|ann|dan", "1")]
        assert_identical(ops)

    def test_multiple_watchers_of_split_ranges(self):
        """Reads that split the status cover leave several ranges each
        holding its own copy of the log; every piece applies correctly."""
        ops = _follow_burst(["carl", "dan", "eve", "frank"])
        ops.append(("scan", "t|ann|0001"))  # partial range read
        ops.append(("scan", "t|ann|"))
        assert_identical(ops)

    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_burst_sizes(self, n):
        users = [f"u{i:02d}" for i in range(n)]
        srv = assert_identical(_follow_burst(users))
        stats = srv.stats.snapshot()
        assert stats.get("pending_range_batches", 0) >= 1


class TestRunCost:
    def test_one_reexecution_per_run(self):
        """The point of the nibble: N logged follows cost one windowed
        re-execution, not N pinned ones."""
        batched, reference = _twin_servers()
        ops = _follow_burst(["carl", "dan", "eve", "frank", "gail"])
        _drive(batched, ops)
        _drive(reference, ops)
        b = batched.stats.snapshot()
        r = reference.stats.snapshot()
        # Identical logs were applied...
        assert b.get("pending_applied") == r.get("pending_applied") == 5
        # ...but the batched engine set up ONE windowed re-execution
        # for the whole run where the reference pinned and re-executed
        # once per logged key.
        assert b.get("pending_range_batches") == 1
        assert r.get("pending_range_batches", 0) == 0
