"""Tests for the fluent join builder and its grammar equivalence."""

import pytest

from repro import PequodServer
from repro.client import JoinSpecError, LocalClient, join
from repro.core.grammar import parse_join
from repro.core.joins import MaintenanceType

TIMELINE_TEXT = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


class TestBuilderCompilation:
    def test_timeline_join_matches_grammar(self):
        built = (
            join("t|<user>|<time>|<poster>")
            .check("s|<user>|<poster>")
            .copy("p|<poster>|<time>")
            .build()
        )
        parsed = parse_join(TIMELINE_TEXT)
        assert built.text == parsed.text
        assert built.output.text == parsed.output.text
        assert [s.operator for s in built.sources] == ["check", "copy"]

    def test_pull_annotation(self):
        built = (
            join("t|<u>|<tm>|<p>")
            .check("s|<u>|<p>")
            .copy("ct|<tm>|<p>")
            .pull()
            .build()
        )
        assert built.maintenance is MaintenanceType.PULL
        assert built.text.split("= ")[1].startswith("pull ")
        assert built.text == parse_join(built.text).text

    def test_snapshot_annotation(self):
        built = join("x|<a>").copy("y|<a>").snapshot(30).build()
        assert built.maintenance is MaintenanceType.SNAPSHOT
        assert built.snapshot_interval == 30.0

    def test_push_is_default_and_resets_pull(self):
        builder = join("x|<a>").copy("y|<a>").pull().push()
        assert builder.build().maintenance is MaintenanceType.PUSH

    def test_every_aggregate_operator(self):
        for op in ("count", "sum", "min", "max"):
            built = getattr(join("agg|<a>"), op)("v|<a>|<i>").build()
            assert built.value_source.operator == op
            assert built.is_aggregate

    def test_text_property_round_trips(self):
        builder = join("karma|<a>").count("vote|<a>|<i>|<v>")
        assert parse_join(builder.text).text == builder.text

    def test_builder_is_reusable(self):
        builder = join("x|<a>").copy("y|<a>")
        assert builder.build().text == builder.build().text


class TestBuilderValidation:
    def test_no_sources_rejected(self):
        with pytest.raises(JoinSpecError):
            join("t|<a>").build()

    def test_empty_output_rejected(self):
        with pytest.raises(JoinSpecError):
            join("")

    def test_empty_source_rejected(self):
        with pytest.raises(JoinSpecError):
            join("t|<a>").copy("  ")

    def test_two_value_sources_rejected(self):
        with pytest.raises(JoinSpecError):
            join("t|<a>").copy("x|<a>").copy("y|<a>").build()

    def test_recursive_join_rejected(self):
        with pytest.raises(JoinSpecError):
            join("t|<a>").copy("t|<a>").build()

    def test_unrecoverable_slot_rejected(self):
        with pytest.raises(JoinSpecError):
            join("t|<a>|<b>").copy("x|<a>").build()

    def test_bad_snapshot_interval_rejected(self):
        with pytest.raises(JoinSpecError):
            join("x|<a>").copy("y|<a>").snapshot(0)

    def test_join_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            join("t|<a>").build()


class TestBuilderInstallation:
    def test_server_accepts_builder_directly(self):
        srv = PequodServer()
        builder = (
            join("t|<user>|<time>|<poster>")
            .check("s|<user>|<poster>")
            .copy("p|<poster>|<time>")
        )
        installed = srv.add_join(builder)
        assert [j.text for j in installed] == [TIMELINE_TEXT]
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "hi")
        assert srv.scan_prefix("t|ann|") == [("t|ann|0100|bob", "hi")]

    def test_server_accepts_builder_sequence(self):
        srv = PequodServer()
        installed = srv.add_join([
            join("t|<u>|<tm>|<p>").check("s|<u>|<p>").copy("p|<p>|<tm>"),
            join("karma|<a>").count("vote|<a>|<i>|<v>"),
        ])
        assert len(installed) == 2

    def test_failed_batch_installs_nothing(self):
        """PequodServer.add_join validates a whole spec before
        installing any statement of it."""
        from repro.core.joins import JoinError

        srv = PequodServer()
        with pytest.raises(JoinError):
            srv.add_join("a|<x> = copy b|<x>; b|<x> = copy a|<x>")
        assert srv.joins == []

    def test_client_accepts_mixed_sequence(self):
        client = LocalClient()
        installed = client.add_join([
            "karma|<a> = count vote|<a>|<i>|<v>",
            join("t|<u>|<tm>|<p>").check("s|<u>|<p>").copy("p|<p>|<tm>"),
        ])
        assert len(installed) == 2
