"""Unit tests for key-space helpers."""

import pytest

from repro.store import keys as K


class TestSplitJoin:
    def test_split(self):
        assert K.split_key("t|ann|0100|bob") == ["t", "ann", "0100", "bob"]

    def test_split_single(self):
        assert K.split_key("t") == ["t"]

    def test_join_roundtrip(self):
        key = "p|bob|0100"
        assert K.join_key(K.split_key(key)) == key

    def test_empty_segments_preserved(self):
        assert K.split_key("t|ann|") == ["t", "ann", ""]


class TestBounds:
    def test_prefix_upper_bound_paper_form(self):
        # Paper footnote 1: upper bound of t|ann| is t|ann}
        assert K.prefix_upper_bound("t|ann|") == "t|ann}"

    def test_prefix_upper_bound_plain(self):
        assert K.prefix_upper_bound("ab") == "ac"

    def test_prefix_upper_bound_orders_correctly(self):
        prefix = "t|ann|"
        hi = K.prefix_upper_bound(prefix)
        assert prefix < hi
        assert prefix + "anything" < hi
        assert "t|annz" < prefix  # sibling user sorts outside the range
        assert not (prefix <= "t|anz" < hi)

    def test_prefix_upper_bound_empty_raises(self):
        with pytest.raises(ValueError):
            K.prefix_upper_bound("")

    def test_prefix_upper_bound_carries_over_max_codepoint(self):
        prefix = "a" + chr(0x10FFFF)
        assert K.prefix_upper_bound(prefix) == "b"

    def test_key_successor_is_tightest(self):
        key = "p|bob|0100"
        succ = K.key_successor(key)
        assert key < succ
        assert not (key < key + "" < succ)  # nothing strictly between

    def test_table_range(self):
        lo, hi = K.table_range("t")
        assert lo == "t"
        assert lo <= "t" < hi
        assert lo <= "t|ann|0100|bob" < hi
        assert not (lo <= "u|x" < hi)


class TestTableAndSubtable:
    def test_table_of(self):
        assert K.table_of("t|ann|0100") == "t"
        assert K.table_of("solo") == "solo"

    def test_subtable_prefix_depth2(self):
        assert K.subtable_prefix("t|ann|0100|bob", 2) == "t|ann"

    def test_subtable_prefix_short_key(self):
        assert K.subtable_prefix("t|ann", 2) == "t|ann"
        assert K.subtable_prefix("t", 2) == "t"

    def test_subtable_prefix_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            K.subtable_prefix("t|a", 0)


class TestRangeAlgebra:
    def test_ranges_overlap(self):
        assert K.ranges_overlap("a", "m", "l", "z")
        assert not K.ranges_overlap("a", "m", "m", "z")  # touching: disjoint
        assert not K.ranges_overlap("a", "b", "c", "d")

    def test_range_contains(self):
        assert K.range_contains("a", "z", "b", "c")
        assert K.range_contains("a", "z", "a", "z")
        assert not K.range_contains("b", "z", "a", "c")

    def test_clamp_range(self):
        assert K.clamp_range("a", "m", "c", "z") == ("c", "m")
        lo, hi = K.clamp_range("a", "b", "x", "z")
        assert lo >= hi  # empty on disjoint
