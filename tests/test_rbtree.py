"""Unit tests for the ordered-map implementations.

Everything except the red-black-specific augmentation hook runs
against BOTH ``OrderedMap`` implementations — the red-black tree and
the blocked sorted array — via the ``ordered_map`` fixture, so the two
cannot drift behaviorally.  A hypothesis property test at the bottom
drives randomized op sequences through both at once and asserts
byte-identical observable state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.rbtree import RBTree
from repro.store.sortedarray import SortedArrayMap

IMPLS = {"rbtree": RBTree, "sortedarray": SortedArrayMap}


@pytest.fixture(params=sorted(IMPLS))
def make_map(request):
    return IMPLS[request.param]


def build(pairs, make_map=RBTree):
    tree = make_map()
    for k, v in pairs:
        tree.insert(k, v)
    return tree


class TestBasicOperations:
    def test_empty_tree(self, make_map):
        tree = make_map()
        assert len(tree) == 0
        assert not tree
        assert tree.get("a") is None
        assert "a" not in tree
        assert tree.min_node() is None
        assert tree.max_node() is None
        assert list(tree.nodes()) == []

    def test_single_insert_and_get(self, make_map):
        tree = make_map()
        tree.insert("k", "v")
        assert len(tree) == 1
        assert tree.get("k") == "v"
        assert "k" in tree
        tree.check_invariants()

    def test_overwrite_keeps_size(self, make_map):
        tree = make_map()
        tree.insert("k", "v1")
        tree.insert("k", "v2")
        assert len(tree) == 1
        assert tree.get("k") == "v2"

    def test_get_default(self, make_map):
        tree = make_map()
        assert tree.get("missing", "fallback") == "fallback"

    def test_remove_present(self, make_map):
        tree = build([("a", 1), ("b", 2)], make_map)
        assert tree.remove("a") is True
        assert len(tree) == 1
        assert tree.get("a") is None
        tree.check_invariants()

    def test_remove_absent(self, make_map):
        tree = build([("a", 1)], make_map)
        assert tree.remove("zz") is False
        assert len(tree) == 1

    def test_clear(self, make_map):
        tree = build([("a", 1), ("b", 2)], make_map)
        tree.clear()
        assert len(tree) == 0
        assert list(tree.nodes()) == []

    def test_insert_returns_node(self, make_map):
        tree = make_map()
        node = tree.insert("a", 1)
        assert node.key == "a"
        assert node.value == 1

    def test_node_validity_tracks_membership(self, make_map):
        tree = make_map()
        node = tree.insert("a", 1)
        assert tree.node_valid(node)
        tree.remove_node(node)
        assert not tree.node_valid(node)


class TestOrderedIteration:
    def test_items_sorted(self, make_map):
        keys = ["m", "c", "x", "a", "q", "b"]
        tree = build([(k, k.upper()) for k in keys], make_map)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_range_iteration_half_open(self, make_map):
        tree = build([(f"k{i}", i) for i in range(10)], make_map)
        got = list(tree.keys("k2", "k5"))
        assert got == ["k2", "k3", "k4"]

    def test_range_iteration_unbounded_hi(self, make_map):
        tree = build([(f"k{i}", i) for i in range(5)], make_map)
        assert list(tree.keys("k3", None)) == ["k3", "k4"]

    def test_range_iteration_empty_range(self, make_map):
        tree = build([(f"k{i}", i) for i in range(5)], make_map)
        assert list(tree.keys("k9", "k99")) == []

    def test_count_range(self, make_map):
        tree = build([(f"{i:03d}", i) for i in range(100)], make_map)
        assert tree.count_range("010", "020") == 10

    def test_iter_protocol(self, make_map):
        tree = build([("b", 2), ("a", 1)], make_map)
        assert list(tree) == ["a", "b"]


class TestNavigation:
    @pytest.fixture
    def tree(self, make_map):
        return build(
            [(f"{i:02d}", i) for i in range(0, 20, 2)], make_map
        )  # 00,02,..18

    def test_ceiling_exact(self, tree):
        assert tree.ceiling_node("04").key == "04"

    def test_ceiling_between(self, tree):
        assert tree.ceiling_node("05").key == "06"

    def test_ceiling_past_end(self, tree):
        assert tree.ceiling_node("19") is None

    def test_higher_skips_exact(self, tree):
        assert tree.higher_node("04").key == "06"

    def test_floor_exact(self, tree):
        assert tree.floor_node("04").key == "04"

    def test_floor_between(self, tree):
        assert tree.floor_node("05").key == "04"

    def test_floor_before_start(self, tree):
        assert tree.floor_node("//") is None

    def test_lower_skips_exact(self, tree):
        assert tree.lower_node("04").key == "02"

    def test_min_max(self, tree):
        assert tree.min_node().key == "00"
        assert tree.max_node().key == "18"

    def test_next_prev_walk(self, tree):
        node = tree.min_node()
        seen = []
        while node is not None:
            seen.append(node.key)
            node = tree.next_node(node)
        assert seen == [f"{i:02d}" for i in range(0, 20, 2)]
        node = tree.max_node()
        seen = []
        while node is not None:
            seen.append(node.key)
            node = tree.prev_node(node)
        assert seen == [f"{i:02d}" for i in range(18, -1, -2)]


class TestInsertNodeAfter:
    def test_append_after_max(self, make_map):
        tree = build([("a", 1), ("b", 2)], make_map)
        node = tree.max_node()
        fresh = tree.insert_node_after(node, "c", 3)
        assert fresh.key == "c"
        assert list(tree.keys()) == ["a", "b", "c"]
        tree.check_invariants()

    def test_insert_in_gap(self, make_map):
        tree = build([("a", 1), ("c", 3)], make_map)
        node = tree.find_node("a")
        tree.insert_node_after(node, "b", 2)
        assert list(tree.keys()) == ["a", "b", "c"]
        tree.check_invariants()

    def test_stale_hint_falls_back(self, make_map):
        tree = build([("a", 1), ("c", 3)], make_map)
        node = tree.find_node("c")
        # "b" sorts before the hint; must still insert correctly.
        tree.insert_node_after(node, "b", 2)
        assert list(tree.keys()) == ["a", "b", "c"]
        tree.check_invariants()

    def test_existing_successor_key_overwrites(self, make_map):
        tree = build([("a", 1), ("b", 2)], make_map)
        node = tree.find_node("a")
        tree.insert_node_after(node, "b", 99)
        assert len(tree) == 2
        assert tree.get("b") == 99

    def test_many_sequential_appends(self, make_map):
        tree = make_map()
        node = tree.insert("000", 0)
        for i in range(1, 300):
            node = tree.insert_node_after(node, f"{i:03d}", i)
        assert len(tree) == 300
        assert list(tree.keys()) == [f"{i:03d}" for i in range(300)]
        tree.check_invariants()


class TestStressInvariants:
    def test_random_insert_remove_keeps_invariants(self, make_map):
        rng = random.Random(42)
        tree = make_map()
        model = {}
        for step in range(2000):
            key = f"{rng.randrange(400):04d}"
            if rng.random() < 0.6:
                tree.insert(key, step)
                model[key] = step
            else:
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
            if step % 250 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted(model.items()) == list(tree.items())

    def test_ascending_descending_inserts(self, make_map):
        up = build([(f"{i:04d}", i) for i in range(500)], make_map)
        up.check_invariants()
        down = build([(f"{i:04d}", i) for i in range(499, -1, -1)], make_map)
        down.check_invariants()
        assert list(up.keys()) == list(down.keys())

    def test_remove_all_in_order(self, make_map):
        tree = build([(f"{i:03d}", i) for i in range(200)], make_map)
        for i in range(200):
            assert tree.remove(f"{i:03d}")
        assert len(tree) == 0
        tree.check_invariants()

    def test_remove_all_reverse_order(self, make_map):
        tree = build([(f"{i:03d}", i) for i in range(200)], make_map)
        for i in range(199, -1, -1):
            assert tree.remove(f"{i:03d}")
        assert len(tree) == 0

    def test_tuple_keys(self, make_map):
        tree = make_map()
        tree.insert(("a", "b"), 1)
        tree.insert(("a", "a"), 2)
        tree.insert(("b", "a"), 3)
        assert list(tree.keys()) == [("a", "a"), ("a", "b"), ("b", "a")]
        tree.check_invariants()


class TestAugmentation:
    def test_augment_maintained_through_rotations(self):
        # Maintain subtree size as augmentation; verify after heavy churn.
        # RBTree-specific: the augmentation hook is what keeps the
        # interval tree on the red-black implementation.
        def aug(node):
            node.aug = 1
            if node.left.aug is not None:
                node.aug += node.left.aug
            if node.right.aug is not None:
                node.aug += node.right.aug

        tree = RBTree(augment=aug)
        rng = random.Random(7)
        present = set()
        for step in range(1500):
            key = rng.randrange(300)
            if rng.random() < 0.55:
                tree.insert(key, None)
                present.add(key)
            elif present:
                victim = rng.choice(sorted(present))
                tree.remove(victim)
                present.discard(victim)
        assert len(tree) == len(present)
        if tree.root is not tree.nil:
            assert tree.root.aug == len(present)


class TestImplementationParity:
    """Random op sequences leave both maps byte-identical, by property."""

    keys = st.text(alphabet="abc01|", min_size=0, max_size=5)
    ops = st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "scan", "navigate"]),
            keys,
            keys,
        ),
        min_size=1,
        max_size=120,
    )

    @settings(max_examples=150, deadline=None)
    @given(ops)
    def test_random_op_sequences_identical(self, sequence):
        rb, sa = RBTree(), SortedArrayMap()
        for step, (op, a, b) in enumerate(sequence):
            if op == "insert":
                n1 = rb.insert(a, step)
                n2 = sa.insert(a, step)
                assert n1.key == n2.key and n1.value == n2.value
            elif op == "remove":
                assert rb.remove(a) == sa.remove(a)
            elif op == "scan":
                lo, hi = min(a, b), max(a, b)
                assert (
                    [(n.key, n.value) for n in rb.nodes(lo, hi)]
                    == [(n.key, n.value) for n in sa.nodes(lo, hi)]
                )
                assert rb.count_range(lo, hi) == sa.count_range(lo, hi)
            else:
                for probe in ("ceiling_node", "higher_node",
                              "floor_node", "lower_node"):
                    x = getattr(rb, probe)(a)
                    y = getattr(sa, probe)(a)
                    assert (x is None) == (y is None)
                    if x is not None:
                        assert x.key == y.key and x.value == y.value
        sa.check_invariants()
        rb.check_invariants()
        assert list(rb.items()) == list(sa.items())
        assert len(rb) == len(sa)
