"""Tests for the Newp application (§2.3, §5.4)."""

from repro.apps.newp import NewpApp
from repro.apps.workload import NewpWorkload


class TestNewpReads:
    def make_article(self, app):
        app.author_article("bob", "a1", "The Article")
        app.comment("bob", "a1", "c1", "liz", "great read")
        app.comment("bob", "a1", "c2", "jim", "disagree")
        app.vote("bob", "a1", "v1")
        app.vote("bob", "a1", "v2")
        app.vote("bob", "a1", "v3")
        # liz authored something popular: karma 2
        app.author_article("liz", "a9", "liz stuff")
        app.vote("liz", "a9", "x1")
        app.vote("liz", "a9", "x2")

    def test_interleaved_page(self):
        app = NewpApp(interleaved=True)
        self.make_article(app)
        page = app.read_article("bob", "a1")
        assert page.text == "The Article"
        assert page.votes == 3
        assert sorted(c[0] for c in page.comments) == ["c1", "c2"]
        assert page.karma == {"liz": 2}

    def test_separate_page(self):
        app = NewpApp(interleaved=False)
        self.make_article(app)
        page = app.read_article("bob", "a1")
        assert page.text == "The Article"
        assert page.votes == 3
        assert page.karma == {"liz": 2}

    def test_modes_agree(self):
        """Both join layouts must render identical pages."""
        a = NewpApp(interleaved=True)
        b = NewpApp(interleaved=False)
        self.make_article(a)
        self.make_article(b)
        assert a.read_article("bob", "a1") == b.read_article("bob", "a1")

    def test_missing_article(self):
        app = NewpApp(interleaved=True)
        page = app.read_article("ghost", "a0")
        assert page.text is None
        assert page.votes == 0
        assert page.comments == []

    def test_vote_updates_page(self):
        app = NewpApp(interleaved=True)
        app.author_article("bob", "a1", "x")
        assert app.read_article("bob", "a1").votes == 0
        app.vote("bob", "a1", "v1")
        assert app.read_article("bob", "a1").votes == 1

    def test_karma_cascade_after_read(self):
        app = NewpApp(interleaved=True)
        app.author_article("bob", "a1", "x")
        app.comment("bob", "a1", "c1", "liz", "hi")
        app.read_article("bob", "a1")  # materialize
        app.author_article("liz", "a2", "liz article")
        app.vote("liz", "a2", "v1")  # raises liz's karma
        assert app.read_article("bob", "a1").karma == {"liz": 1}


class TestRpcCounts:
    def test_interleaved_uses_one_rpc_per_read(self):
        app = NewpApp(interleaved=True)
        app.author_article("bob", "a1", "x")
        app.comment("bob", "a1", "c1", "liz", "hi")
        app.read_article("bob", "a1")
        app.meter.reset()
        app.read_article("bob", "a1")
        assert app.meter.get("rpcs") == 1

    def test_separate_uses_many_rpcs_per_read(self):
        """§5.4: many gets per article (e.g., for karma)."""
        app = NewpApp(interleaved=False)
        app.author_article("bob", "a1", "x")
        for i, commenter in enumerate(["liz", "jim", "kay"]):
            app.comment("bob", "a1", f"c{i}", commenter, "text")
        app.read_article("bob", "a1")
        app.meter.reset()
        app.read_article("bob", "a1")
        # article + rank + comments scan + 3 karma gets
        assert app.meter.get("rpcs") == 6


class TestNewpWorkload:
    def test_prepopulate_and_run(self):
        wl = NewpWorkload(
            n_articles=10, n_users=5, n_comments=30, n_votes=40,
            n_sessions=50, vote_rate=0.5, seed=3,
        )
        app = NewpApp(interleaved=True)
        wl.prepopulate(app)
        counts = wl.run(app)
        assert counts["reads"] == 50
        assert 10 <= counts["votes"] <= 40  # ~50% of 50
        assert counts["comments"] <= 5

    def test_deterministic(self):
        results = []
        for _ in range(2):
            wl = NewpWorkload(n_articles=8, n_users=4, n_comments=10,
                              n_votes=10, n_sessions=30, vote_rate=0.3, seed=5)
            app = NewpApp(interleaved=True)
            wl.prepopulate(app)
            results.append(wl.run(app))
        assert results[0] == results[1]

    def test_both_modes_same_final_state(self):
        pages = []
        for interleaved in (True, False):
            wl = NewpWorkload(n_articles=6, n_users=4, n_comments=12,
                              n_votes=15, n_sessions=40, vote_rate=0.4, seed=6)
            app = NewpApp(interleaved=interleaved)
            wl.prepopulate(app)
            wl.run(app)
            pages.append([
                app.read_article(author, aid) for author, aid in wl.articles
            ])
        assert pages[0] == pages[1]
