"""Unit tests for cache-join validation (paper §3)."""

import pytest

from repro.core.joins import CacheJoin, JoinError, MaintenanceType, Source


class TestValidation:
    def test_simple_copy_join(self):
        j = CacheJoin("out|<a>", [("copy", "in|<a>")])
        assert j.value_index == 0
        assert not j.is_aggregate

    def test_check_copy_join(self):
        j = CacheJoin(
            "t|<u>|<tm>|<p>",
            [("check", "s|<u>|<p>"), ("copy", "p|<p>|<tm>")],
        )
        assert j.value_index == 1
        assert j.value_source.operator == "copy"

    def test_aggregate_join(self):
        j = CacheJoin("karma|<a>", [("count", "vote|<a>|<id>|<v>")])
        assert j.is_aggregate

    def test_no_sources_rejected(self):
        with pytest.raises(JoinError):
            CacheJoin("out|<a>", [])

    def test_two_value_sources_rejected(self):
        """Exactly n-1 operators must be check (§3)."""
        with pytest.raises(JoinError):
            CacheJoin(
                "o|<a>|<b>", [("copy", "x|<a>"), ("copy", "y|<b>")]
            )

    def test_all_check_rejected(self):
        with pytest.raises(JoinError):
            CacheJoin("o|<a>", [("check", "x|<a>")])

    def test_unbound_output_slot_rejected(self):
        with pytest.raises(JoinError):
            CacheJoin("o|<a>|<missing>", [("copy", "x|<a>")])

    def test_recursive_join_rejected(self):
        """A join's output cannot be one of its sources (§3)."""
        with pytest.raises(JoinError):
            CacheJoin("t|<a>", [("copy", "t|<a>")])

    def test_recursion_detected_with_different_patterns(self):
        with pytest.raises(JoinError):
            CacheJoin(
                "t|<u>|<x>",
                [("check", "s|<u>|<x>"), ("copy", "t|<x>|<u>")],
            )

    def test_snapshot_requires_interval(self):
        with pytest.raises(JoinError):
            CacheJoin(
                "o|<a>", [("copy", "x|<a>")],
                maintenance=MaintenanceType.SNAPSHOT,
            )

    def test_snapshot_interval_positive(self):
        with pytest.raises(JoinError):
            CacheJoin(
                "o|<a>", [("copy", "x|<a>")],
                maintenance=MaintenanceType.SNAPSHOT, snapshot_interval=-1,
            )

    def test_interval_only_for_snapshot(self):
        with pytest.raises(JoinError):
            CacheJoin("o|<a>", [("copy", "x|<a>")], snapshot_interval=5)

    def test_unknown_operator_rejected(self):
        with pytest.raises(JoinError):
            Source("grab", "x|<a>")

    def test_source_accepts_tuple_or_object(self):
        j1 = CacheJoin("o|<a>", [Source("copy", "x|<a>")])
        j2 = CacheJoin("o|<a>", [("copy", "x|<a>")])
        assert j1.text == j2.text

    def test_aggregate_with_extra_source_slots_ok(self):
        """Aggregated-away slots (id, voter) are legitimate (§2.3)."""
        j = CacheJoin("rank|<a>|<id>", [("count", "vote|<a>|<id>|<v>")])
        assert j.is_aggregate

    def test_source_tables(self):
        j = CacheJoin(
            "t|<u>|<tm>|<p>",
            [("check", "s|<u>|<p>"), ("copy", "p|<p>|<tm>")],
        )
        assert j.source_tables() == ["s", "p"]

    def test_text_rendering(self):
        j = CacheJoin(
            "o|<a>", [("copy", "x|<a>")],
            maintenance=MaintenanceType.SNAPSHOT, snapshot_interval=2.0,
        )
        assert "snapshot 2.0" in j.text
