"""Tests for the §5.2 comparison backends.

The crucial property: every backend computes the *same timelines* for
the same operation sequence — the comparison measures architecture, not
behaviour differences.
"""

import pytest

from repro.apps.social_graph import generate_graph
from repro.apps.twip import PequodTwipBackend, format_time
from repro.apps.workload import TwipWorkload
from repro.baselines import (
    ClientPequodBackend,
    MemcacheLikeBackend,
    RedisLikeBackend,
    SqlViewBackend,
)

ALL_BACKENDS = [
    PequodTwipBackend,
    ClientPequodBackend,
    RedisLikeBackend,
    MemcacheLikeBackend,
    SqlViewBackend,
]


@pytest.fixture(params=ALL_BACKENDS, ids=lambda c: c.name)
def backend(request):
    return request.param()


class TestBackendSemantics:
    def test_simple_post_delivery(self, backend):
        backend.subscribe("ann", "bob")
        backend.post("bob", format_time(100), "hello")
        got = backend.timeline("ann", format_time(0))
        assert got == [(format_time(100), "bob", "hello")]

    def test_since_filtering(self, backend):
        backend.subscribe("ann", "bob")
        for t in (100, 200, 300):
            backend.post("bob", format_time(t), f"tweet{t}")
        got = backend.timeline("ann", format_time(150))
        assert [time for time, _, _ in got] == [format_time(200), format_time(300)]

    def test_non_follower_sees_nothing(self, backend):
        backend.subscribe("ann", "bob")
        backend.post("bob", format_time(100), "x")
        assert backend.timeline("liz", format_time(0)) == []

    def test_backfill_on_subscribe(self, backend):
        backend.post("bob", format_time(50), "old tweet")
        backend.subscribe("ann", "bob")
        got = backend.timeline("ann", format_time(0))
        assert (format_time(50), "bob", "old tweet") in got

    def test_multi_poster_merge(self, backend):
        backend.subscribe("ann", "bob")
        backend.subscribe("ann", "liz")
        backend.post("liz", format_time(200), "later")
        backend.post("bob", format_time(100), "earlier")
        got = backend.timeline("ann", format_time(0))
        assert [text for _, _, text in got] == ["earlier", "later"]

    def test_meter_counts_rpcs(self, backend):
        backend.subscribe("ann", "bob")
        backend.reset_meter()
        backend.post("bob", format_time(1), "x")
        backend.timeline("ann", format_time(0))
        assert backend.meter.get("rpcs") >= 2


class TestCrossSystemAgreement:
    def test_all_backends_agree_on_workload(self):
        """Same ops -> same delivered timelines on all five systems."""
        graph = generate_graph(40, 4, seed=8)
        workload = TwipWorkload(graph, total_ops=300, seed=8)
        ops = workload.generate()
        counts = []
        for cls in ALL_BACKENDS:
            b = cls()
            counts.append(workload.run(b, ops=ops))
        for other in counts[1:]:
            assert other == counts[0]


class TestArchitecturalCostDifferences:
    def run_workload(self, backend_cls, graph, ops, workload):
        b = backend_cls()
        workload.run(b, ops=ops)
        return b.meter

    def test_pequod_uses_fewest_rpcs(self):
        graph = generate_graph(60, 6, seed=9)
        workload = TwipWorkload(graph, 400, seed=9)
        ops = workload.generate()
        meters = {
            cls.name: self.run_workload(cls, graph, ops, workload)
            for cls in ALL_BACKENDS
        }
        pequod_rpcs = meters["pequod"].get("rpcs")
        for name in ("redis", "client pequod", "memcached"):
            assert meters[name].get("rpcs") > pequod_rpcs, name

    def test_memcached_moves_most_bytes(self):
        graph = generate_graph(60, 6, seed=9)
        workload = TwipWorkload(graph, 400, seed=9)
        ops = workload.generate()
        mem = self.run_workload(MemcacheLikeBackend, graph, ops, workload)
        redis = self.run_workload(RedisLikeBackend, graph, ops, workload)
        assert mem.get("bytes_moved") > redis.get("bytes_moved")

    def test_sql_pays_statement_overhead(self):
        b = SqlViewBackend()
        b.subscribe("ann", "bob")
        b.post("bob", format_time(1), "x")
        b.timeline("ann", format_time(0))
        assert b.meter.get("sql_statements") == 3
        assert b.meter.get("sql_trigger_rows") >= 1
