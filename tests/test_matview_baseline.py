"""Tests for the materialized-view database baseline (§5.2 footnote 3:
true-matview databases "performed similarly to PostgreSQL")."""

from repro.apps.social_graph import generate_graph
from repro.apps.twip import PequodTwipBackend, format_time
from repro.apps.workload import TwipWorkload
from repro.baselines import MatViewBackend, SqlViewBackend
from repro.bench.costmodel import DEFAULT_MODEL


class TestMatViewSemantics:
    def test_basic_delivery(self):
        b = MatViewBackend()
        b.subscribe("ann", "bob")
        b.post("bob", format_time(100), "hello")
        assert b.timeline("ann", format_time(0)) == [
            (format_time(100), "bob", "hello")
        ]

    def test_refresh_on_read_after_write(self):
        b = MatViewBackend()
        b.subscribe("ann", "bob")
        b.timeline("ann", format_time(0))
        refreshes = b.meter.get("sql_view_refreshes")
        b.post("bob", format_time(5), "new")
        assert b.timeline("ann", format_time(0))[-1][2] == "new"
        assert b.meter.get("sql_view_refreshes") == refreshes + 1

    def test_no_refresh_when_fresh(self):
        b = MatViewBackend()
        b.subscribe("ann", "bob")
        b.post("bob", format_time(5), "x")
        b.timeline("ann", format_time(0))
        refreshes = b.meter.get("sql_view_refreshes")
        b.timeline("ann", format_time(0))  # no writes in between
        assert b.meter.get("sql_view_refreshes") == refreshes

    def test_agrees_with_trigger_database(self):
        graph = generate_graph(30, 4, seed=12)
        workload = TwipWorkload(graph, 250, seed=12)
        ops = workload.generate()
        trig, mat = SqlViewBackend(), MatViewBackend()
        counts_t = workload.run(trig, ops=ops)
        counts_m = workload.run(mat, ops=ops)
        assert counts_t == counts_m

    def test_agrees_with_pequod(self):
        graph = generate_graph(30, 4, seed=14)
        workload = TwipWorkload(graph, 250, seed=14)
        ops = workload.generate()
        a, b = PequodTwipBackend(), MatViewBackend()
        assert workload.run(a, ops=ops) == workload.run(b, ops=ops)


class TestMatViewPerformsLikePostgres:
    def test_same_order_of_magnitude_as_triggers(self):
        """The paper's footnote: matview databases performed similarly
        to (trigger-based) PostgreSQL — both far behind the caches."""
        graph = generate_graph(120, 8, seed=15)
        workload = TwipWorkload(graph, 1500, seed=15)
        ops = workload.generate()

        def modeled(backend):
            workload.run(backend, ops=ops)
            return DEFAULT_MODEL.runtime_us(backend.meter.snapshot())

        pequod = modeled(PequodTwipBackend())
        triggers = modeled(SqlViewBackend())
        matview = modeled(MatViewBackend())
        assert triggers > 2 * pequod
        assert matview > 2 * pequod
        # "Similar": within a factor of four of each other either way.
        ratio = matview / triggers
        assert 0.25 < ratio < 4.0, ratio
