"""Tests for the framed RPC protocol."""

import pytest

from repro.net import protocol
from repro.net.protocol import FrameBuffer, ProtocolError


class TestFraming:
    def test_frame_roundtrip(self):
        payload = b"hello world"
        framed = protocol.frame(payload)
        buf = FrameBuffer()
        assert buf.feed(framed) == [payload]

    def test_partial_delivery(self):
        payload = b"x" * 100
        framed = protocol.frame(payload)
        buf = FrameBuffer()
        assert buf.feed(framed[:50]) == []
        assert buf.feed(framed[50:]) == [payload]
        assert buf.pending_bytes() == 0

    def test_multiple_frames_in_one_read(self):
        f1 = protocol.frame(b"one")
        f2 = protocol.frame(b"two")
        buf = FrameBuffer()
        assert buf.feed(f1 + f2) == [b"one", b"two"]

    def test_frame_boundary_straddling(self):
        f1 = protocol.frame(b"one")
        f2 = protocol.frame(b"two")
        data = f1 + f2
        buf = FrameBuffer()
        got = []
        for i in range(0, len(data), 3):
            got.extend(buf.feed(data[i : i + 3]))
        assert got == [b"one", b"two"]

    def test_oversized_frame_rejected(self):
        buf = FrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b"\xff\xff\xff\xff")

    def test_empty_frame(self):
        buf = FrameBuffer()
        assert buf.feed(protocol.frame(b"")) == [b""]


class TestMessages:
    def test_request_roundtrip(self):
        data = protocol.encode_request(7, "scan", ["t|ann|", "t|ann}"])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        message = protocol.decode_message(payload)
        request_id, method, args = protocol.parse_request(message)
        assert (request_id, method, args) == (7, "scan", ["t|ann|", "t|ann}"])

    def test_response_roundtrip(self):
        data = protocol.encode_response(7, protocol.OK, [["k", "v"]])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        message = protocol.decode_message(payload)
        request_id, status, body = protocol.parse_response(message)
        assert (request_id, status, body) == (7, "ok", [["k", "v"]])

    def test_error_response(self):
        data = protocol.encode_response(3, protocol.ERR, "boom")
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        _, status, body = protocol.parse_response(protocol.decode_message(payload))
        assert status == protocol.ERR
        assert body == "boom"

    def test_malformed_message_rejected(self):
        from repro.net.codec import encode

        with pytest.raises(ProtocolError):
            protocol.decode_message(b"\x00garbage")
        with pytest.raises(ProtocolError):
            protocol.decode_message(encode("not a list"))
        with pytest.raises(ProtocolError):
            protocol.parse_response(protocol.decode_message(encode([1, "bad-status", 2])))

    def test_request_with_no_args(self):
        data = protocol.encode_request(1, "ping", [])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        _, method, args = protocol.parse_request(protocol.decode_message(payload))
        assert method == "ping"
        assert args == []
