"""Tests for the framed RPC protocol."""

import pytest

from repro.net import protocol
from repro.net.protocol import FrameBuffer, ProtocolError


class TestFraming:
    def test_frame_roundtrip(self):
        payload = b"hello world"
        framed = protocol.frame(payload)
        buf = FrameBuffer()
        assert buf.feed(framed) == [payload]

    def test_partial_delivery(self):
        payload = b"x" * 100
        framed = protocol.frame(payload)
        buf = FrameBuffer()
        assert buf.feed(framed[:50]) == []
        assert buf.feed(framed[50:]) == [payload]
        assert buf.pending_bytes() == 0

    def test_multiple_frames_in_one_read(self):
        f1 = protocol.frame(b"one")
        f2 = protocol.frame(b"two")
        buf = FrameBuffer()
        assert buf.feed(f1 + f2) == [b"one", b"two"]

    def test_frame_boundary_straddling(self):
        f1 = protocol.frame(b"one")
        f2 = protocol.frame(b"two")
        data = f1 + f2
        buf = FrameBuffer()
        got = []
        for i in range(0, len(data), 3):
            got.extend(buf.feed(data[i : i + 3]))
        assert got == [b"one", b"two"]

    def test_oversized_frame_rejected(self):
        buf = FrameBuffer()
        with pytest.raises(ProtocolError):
            buf.feed(b"\xff\xff\xff\xff")

    def test_empty_frame(self):
        buf = FrameBuffer()
        assert buf.feed(protocol.frame(b"")) == [b""]


class TestMessages:
    def test_request_roundtrip(self):
        data = protocol.encode_request(7, "scan", ["t|ann|", "t|ann}"])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        message = protocol.decode_message(payload)
        request_id, method, args = protocol.parse_request(message)
        assert (request_id, method, args) == (7, "scan", ["t|ann|", "t|ann}"])

    def test_response_roundtrip(self):
        data = protocol.encode_response(7, protocol.OK, [["k", "v"]])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        message = protocol.decode_message(payload)
        request_id, status, body = protocol.parse_response(message)
        assert (request_id, status, body) == (7, "ok", [["k", "v"]])

    def test_error_response(self):
        data = protocol.encode_response(3, protocol.ERR, "boom")
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        _, status, body = protocol.parse_response(protocol.decode_message(payload))
        assert status == protocol.ERR
        assert body == "boom"

    def test_malformed_message_rejected(self):
        from repro.net.codec import encode

        with pytest.raises(ProtocolError):
            protocol.decode_message(b"\x00garbage")
        with pytest.raises(ProtocolError):
            protocol.decode_message(encode("not a list"))
        with pytest.raises(ProtocolError):
            protocol.parse_response(protocol.decode_message(encode([1, "bad-status", 2])))

    def test_request_with_no_args(self):
        data = protocol.encode_request(1, "ping", [])
        buf = FrameBuffer()
        (payload,) = buf.feed(data)
        _, method, args = protocol.parse_request(protocol.decode_message(payload))
        assert method == "ping"
        assert args == []


class TestPushFrames:
    """Server-push framing: reserved negative ids (§2.4)."""

    def test_push_id_round_trip(self):
        for sub_id in (0, 1, 7, 12345):
            push_id = protocol.push_id_for(sub_id)
            assert push_id < 0
            assert protocol.sub_id_of(push_id) == sub_id

    def test_invalid_ids_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.push_id_for(-1)
        with pytest.raises(protocol.ProtocolError):
            protocol.sub_id_of(0)

    def test_push_frame_round_trip(self):
        from repro.core.hub import ChangeEvent
        from repro.core.operators import ChangeKind

        events = [
            ChangeEvent(7, "p|a|1", None, "x", ChangeKind.INSERT),
            ChangeEvent(9, "p|a|1", "x", None, ChangeKind.REMOVE),
        ]
        data = protocol.encode_push(3, events)
        buf = protocol.FrameBuffer()
        (payload,) = buf.feed(data)
        message = protocol.decode_message(payload)
        # Push frames parse as responses (id routes by sign)...
        request_id, status, _body = protocol.parse_response(message)
        assert request_id < 0 and status == protocol.PUSH
        # ...and fully decode to the events that were sent.
        sub_id, decoded = protocol.parse_push(message)
        assert sub_id == 3
        assert decoded == events

    def test_malformed_push_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_push([4, protocol.PUSH, []])  # non-negative id
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_push([-1, protocol.OK, []])  # wrong status
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_event([1, "key"])  # truncated event

    def test_not_found_is_a_valid_error_code(self):
        payload = protocol.encode_error(
            protocol.ERR_CODE_NOT_FOUND, "no subscription 9"
        )
        code, message = protocol.parse_error(payload)
        assert code == protocol.ERR_CODE_NOT_FOUND
        assert message == "no subscription 9"
