"""Tests for admission control: overload policy validation, shed and
degrade modes, the bounded-staleness guarantee (deterministic via
``SimClock``), and the overload signals (queue depth, soft memory)."""

import pytest

from repro import PequodServer
from repro.core.clock import SimClock
from repro.core.load import (
    AdmissionController,
    MODE_DEGRADE,
    MODE_SHED,
    OverloadError,
    OverloadPolicy,
)

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


class TestPolicyValidation:
    def test_modes(self):
        assert OverloadPolicy(mode=MODE_SHED).mode == "shed"
        assert OverloadPolicy(mode=MODE_DEGRADE, max_staleness=1.0).mode == "degrade"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            OverloadPolicy(mode="panic")

    def test_degrade_requires_staleness_bound(self):
        with pytest.raises(ValueError):
            OverloadPolicy(mode=MODE_DEGRADE)

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(ValueError):
            OverloadPolicy(mode=MODE_SHED, max_queue_depth=0)
        with pytest.raises(ValueError):
            OverloadPolicy(mode=MODE_SHED, soft_memory_limit=-1)


def shed_server(**policy_kwargs) -> PequodServer:
    return PequodServer(
        overload_policy=OverloadPolicy(mode=MODE_SHED, **policy_kwargs)
    )


class TestShedMode:
    def test_not_overloaded_serves_normally(self):
        server = shed_server()
        server.put("p|a|1", "x")
        assert server.get("p|a|1") == "x"

    def test_forced_overload_sheds_reads_and_writes(self):
        server = shed_server()
        server.put("p|a|1", "x")
        server.load.force("drill")
        with pytest.raises(OverloadError) as ei:
            server.get("p|a|1")
        assert ei.value.reason == "drill"
        with pytest.raises(OverloadError):
            server.put("p|a|2", "y")
        with pytest.raises(OverloadError):
            server.scan("p|", "p}")

    def test_release_restores_service(self):
        server = shed_server()
        server.load.force("drill")
        with pytest.raises(OverloadError):
            server.get("p|a|1")
        server.load.force(None)
        assert server.get("p|a|1") is None

    def test_shed_counters(self):
        server = shed_server()
        server.load.force("drill")
        for _ in range(3):
            with pytest.raises(OverloadError):
                server.get("p|a|1")
        with pytest.raises(OverloadError):
            server.put("p|a|1", "x")
        snap = server.stats.snapshot()
        assert snap["overload_shed_reads"] == 3
        assert snap["overload_shed_writes"] == 1

    def test_queue_depth_signal(self):
        server = shed_server(max_queue_depth=4)
        server.load.report_queue_depth(5)
        assert server.load.overloaded
        with pytest.raises(OverloadError) as ei:
            server.get("p|a|1")
        assert "queue" in ei.value.reason
        server.load.report_queue_depth(2)
        assert not server.load.overloaded
        assert server.get("p|a|1") is None

    def test_soft_memory_signal(self):
        server = shed_server(soft_memory_limit=1)
        server.put("p|a|1", "x" * 64)  # admitted: memory starts at zero
        with pytest.raises(OverloadError) as ei:
            server.put("p|a|2", "y")
        assert "memory" in ei.value.reason

    def test_overload_gauges_in_metrics(self):
        server = shed_server()
        server.load.force("drill")
        snap = server.metrics_snapshot()
        assert snap["overloaded"] == 1.0
        server.load.force(None)
        assert server.metrics_snapshot()["overloaded"] == 0.0


def degrade_server(max_staleness: float, clock=None):
    return PequodServer(
        clock=clock,
        overload_policy=OverloadPolicy(
            mode=MODE_DEGRADE, max_staleness=max_staleness
        ),
    )


class TestDegradeMode:
    def _warm(self, server):
        server.add_join(TIMELINE)
        server.put("s|ann|bob", "1")
        server.put("p|bob|0100", "first")
        assert server.scan("t|ann|", "t|ann}") == [
            ("t|ann|0100|bob", "first")
        ]

    def test_serves_stale_within_bound(self):
        clock = SimClock()
        server = degrade_server(10.0, clock=clock)
        self._warm(server)
        # Follow churn hits the lazy check source: a pending-log entry
        # the next validation must resolve.
        server.put("s|ann|liz", "1")
        server.put("p|liz|0050", "liz old post")
        clock.advance(3.0)
        server.load.force("burst")
        rows = server.scan("t|ann|", "t|ann}")
        # Served the pre-churn timeline without revalidating.
        assert rows == [("t|ann|0100|bob", "first")]
        snap = server.stats.snapshot()
        assert snap["overload_degraded_reads"] >= 1
        assert snap["stale_reads_served"] >= 1

    def test_staleness_never_exceeds_bound(self):
        clock = SimClock()
        server = degrade_server(5.0, clock=clock)
        self._warm(server)
        server.put("s|ann|liz", "1")
        server.put("p|liz|0050", "liz old post")
        clock.advance(6.0)  # older than the bound: must revalidate
        server.load.force("burst")
        rows = server.scan("t|ann|", "t|ann}")
        assert rows == [
            ("t|ann|0050|liz", "liz old post"),
            ("t|ann|0100|bob", "first"),
        ]
        tm = server.engine.table_metrics["t"]
        assert tm.stale_age_max <= 5.0

    def test_stale_age_max_tracks_high_water(self):
        clock = SimClock()
        server = degrade_server(10.0, clock=clock)
        self._warm(server)
        server.put("s|ann|liz", "1")
        clock.advance(4.0)
        server.load.force("burst")
        server.scan("t|ann|", "t|ann}")
        tm = server.engine.table_metrics["t"]
        assert tm.stale_age_max == pytest.approx(4.0)
        assert tm.stale_age_max <= 10.0

    def test_recovery_applies_pending_after_release(self):
        clock = SimClock()
        server = degrade_server(10.0, clock=clock)
        self._warm(server)
        server.put("s|ann|liz", "1")
        server.put("p|liz|0050", "liz old post")
        clock.advance(2.0)
        server.load.force("burst")
        assert server.scan("t|ann|", "t|ann}") == [
            ("t|ann|0100|bob", "first")
        ]
        server.load.force(None)
        assert server.scan("t|ann|", "t|ann}") == [
            ("t|ann|0050|liz", "liz old post"),
            ("t|ann|0100|bob", "first"),
        ]

    def test_degrade_still_sheds_writes(self):
        server = degrade_server(10.0)
        server.put("p|a|1", "x")
        server.load.force("burst")
        with pytest.raises(OverloadError):
            server.put("p|a|2", "y")
        server.load.force(None)
        server.put("p|a|2", "y")

    def test_bound_cleared_when_load_passes(self):
        clock = SimClock()
        server = degrade_server(10.0, clock=clock)
        self._warm(server)
        server.put("s|ann|liz", "1")
        server.put("p|liz|0050", "liz old post")
        server.load.force("burst")
        server.scan("t|ann|", "t|ann}")
        server.load.force(None)
        # Next admitted read disarms the engine's staleness bound and
        # revalidates.
        rows = server.scan("t|ann|", "t|ann}")
        assert len(rows) == 2
        assert server.engine.staleness_bound is None


class TestAdmissionController:
    def test_standalone_controller_over_engine(self):
        server = PequodServer()
        ctl = AdmissionController(
            server.engine, OverloadPolicy(mode=MODE_SHED)
        )
        assert not ctl.overloaded
        ctl.force("x")
        assert ctl.overloaded
        assert ctl.overload_reason() == "x"

    def test_no_policy_means_no_gate(self):
        server = PequodServer()
        assert server.load is None
        server.put("p|a|1", "x")
        assert server.get("p|a|1") == "x"
