"""Failure injection and robustness tests.

The paper is explicit that Pequod "do[es] not focus on consistency or
resilience to failure" (§2.4); these tests pin down how the system
behaves at its stated boundaries — malformed network input, lost
subscription updates, eviction racing writes — so the limits are
documented rather than accidental.
"""

import asyncio

import pytest

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.distrib import Cluster
from repro.distrib.node import MSG_UPDATE
from repro.net.rpc_client import RpcClient
from repro.net.rpc_server import RpcServer


def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


class TestRpcFaultTolerance:
    def test_garbage_bytes_do_not_kill_server(self):
        async def body():
            server = RpcServer(PequodServer())
            await server.start()
            try:
                # A rogue connection sends an oversized frame header.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"\xff\xff\xff\xff garbage beyond reason")
                await writer.drain()
                writer.close()
                # A well-behaved client still gets service.
                client = RpcClient("127.0.0.1", server.port)
                await client.connect()
                assert await client.ping() == "pong"
                await client.close()
            finally:
                await server.stop()

        run(body())

    def test_malformed_message_returns_error_response(self):
        async def body():
            server = RpcServer(PequodServer())
            await server.start()
            client = RpcClient("127.0.0.1", server.port)
            await client.connect()
            try:
                # Wrong arity for a known method -> error, not crash.
                with pytest.raises(Exception):
                    await client.call("get")  # missing key argument
                assert await client.ping() == "pong"
            finally:
                await client.close()
                await server.stop()

        run(body())

    def test_abrupt_client_disconnect(self):
        async def body():
            server = RpcServer(PequodServer())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.transport.abort()  # RST, no goodbye
                client = RpcClient("127.0.0.1", server.port)
                await client.connect()
                assert await client.ping() == "pong"
                await client.close()
            finally:
                await server.stop()

        run(body())


class TestMessageLoss:
    def make_cluster(self):
        return Cluster(2, 2, ("p", "s"), joins=TIMELINE_JOIN)

    def test_lost_update_leaves_replica_stale(self):
        """Documented limit: subscription updates are fire-and-forget,
        so a dropped message means staleness until recomputation."""
        cluster = self.make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")  # subscribe compute->base
        cluster.net.loss_filter = lambda src, dst, kind, body: kind == MSG_UPDATE
        cluster.put("p|bob|0100", "lost in transit")
        cluster.settle()
        assert cluster.net.messages_dropped >= 1
        assert cluster.scan("ann", "t|ann|", "t|ann}") == []

    def test_later_updates_still_flow_after_loss(self):
        cluster = self.make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        dropped = []

        def drop_once(src, dst, kind, body):
            if kind == MSG_UPDATE and not dropped:
                dropped.append(body)
                return True
            return False

        cluster.net.loss_filter = drop_once
        cluster.put("p|bob|0100", "dropped")
        cluster.put("p|bob|0200", "delivered")
        cluster.settle()
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert got == [("t|ann|0200|bob", "delivered")]

    def test_refetch_heals_stale_replica(self):
        """Evicting the stale mirror forces a refetch from the home
        server, which repairs the lost update."""
        cluster = self.make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        cluster.net.loss_filter = lambda src, dst, kind, body: kind == MSG_UPDATE
        cluster.put("p|bob|0100", "initially lost")
        cluster.settle()
        cluster.net.loss_filter = None
        node = cluster.compute_node_for("ann")
        # Simulate repair: drop the mirrored coverage and computed data.
        node.resolver.presence.clear()
        while node.server.eviction.evict_one():
            pass
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "initially lost")]


class TestEvictionRaces:
    def test_eviction_between_write_and_read(self):
        srv = PequodServer()
        srv.add_join(TIMELINE_JOIN)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "one")
        srv.scan("t|ann|", "t|ann}")
        srv.eviction.evict_one()
        srv.put("p|bob|0200", "two")  # write into evicted coverage
        srv.eviction.evict_one()  # nothing tracked; must be a no-op
        got = srv.scan("t|ann|", "t|ann}")
        assert [v for _, v in got] == ["one", "two"]

    def test_repeated_evict_all_then_rebuild(self):
        srv = PequodServer()
        srv.add_join(TIMELINE_JOIN)
        for i in range(5):
            srv.put(f"s|u{i}|star", "1")
        srv.put("p|star|0001", "x")
        for i in range(5):
            srv.scan(f"t|u{i}|", f"t|u{i}}}")
        for _ in range(3):
            while srv.eviction.evict_one():
                pass
            for i in range(5):
                assert srv.scan(f"t|u{i}|", f"t|u{i}}}") == [
                    (f"t|u{i}|0001|star", "x")
                ]


class TestAdversarialKeys:
    def test_keys_with_separator_heavy_content(self):
        srv = PequodServer()
        srv.add_join("o|<a> = copy i|<a>")
        srv.put("i|", "empty-slot")  # slot value is the empty string
        srv.put("i|x", "normal")
        got = srv.scan("o|", "o}")
        assert ("o|x", "normal") in got

    def test_unicode_keys_roundtrip(self):
        srv = PequodServer()
        srv.add_join("o|<a> = copy i|<a>")
        srv.put("i|ünïcødé", "value")
        assert srv.get("o|ünïcødé") == "value"

    def test_non_matching_keys_in_source_range_skipped(self):
        """Schema-free stores may hold keys that don't match the source
        pattern (§3.1); they must be ignored, not crash."""
        srv = PequodServer()
        srv.add_join(
            "t|<u>|<tm>|<p> = check s|<u>|<p> copy p|<p>|<tm>"
        )
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "good")
        srv.put("p|bob|0100|extra|segments", "bad-arity")
        srv.put("p|bob", "too-short")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "good")]
