"""Shared test configuration: async test support.

The asyncio lane prefers ``pytest-asyncio`` (pinned in the ``[test]``
extras, ``asyncio_mode = "auto"`` in pyproject.toml).  Offline
environments without the plugin still run every async test: the hook
below detects plain ``async def`` tests and drives each through
``asyncio.run`` with its (synchronous) fixtures resolved as usual.
"""

import asyncio
import inspect

import pytest


@pytest.hookimpl(tryfirst=True)
def pytest_pyfunc_call(pyfuncitem):
    if pyfuncitem.config.pluginmanager.hasplugin("asyncio"):
        return None  # pytest-asyncio owns async tests when installed
    func = pyfuncitem.obj
    if not inspect.iscoroutinefunction(func):
        return None
    kwargs = {
        name: pyfuncitem.funcargs[name]
        for name in pyfuncitem._fixtureinfo.argnames
    }
    asyncio.run(func(**kwargs))
    return True
