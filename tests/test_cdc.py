"""CDC write-around deployment: feed, pump, and conformance tests.

The contract under test (§2's write-around deployment, made durable):

* the change feed assigns dense sequence numbers, survives crashes
  (torn tails truncate, cursors resume gap-free), and backpressures
  instead of growing without bound;
* the pump's fenced backfill converges a cold cache under concurrent
  write load without losing or double-applying a change;
* a ``mode="write-around"`` deployment is observationally identical to
  write-through after ``settle_cdc()`` — on the local, rpc, and procs
  backends, after a mid-workload consumer crash + resume, and under
  ``chaos.cdc_lag`` fault injection.
"""

import hashlib
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.twip import TIMELINE_JOIN, format_time
from repro.backing import BackingDatabase
from repro.cdc import ChangeFeed, CdcPump, FeedOverflowError
from repro.chaos import CdcLag
from repro.client import make_client
from repro.client.procs import ProcClusterClient
from repro.core.operators import ChangeKind
from repro.core.server import PequodServer
from repro.distrib.procs import ProcCluster

KARMA = "karma|<author> = count vote|<author>|<id>|<voter>"
MODES = ("write-through", "write-around")


# ======================================================================
# The feed: sequencing, durability, cursors, backpressure
# ======================================================================
class TestChangeFeed:
    def test_dense_sequencing_and_fetch(self):
        feed = ChangeFeed()
        for i in range(5):
            rec = feed.record(f"k{i}", None, str(i), ChangeKind.INSERT)
            assert rec.seq == i + 1
        assert feed.high_water == 5
        got = feed.fetch(0, limit=10)
        assert [r.seq for r in got] == [1, 2, 3, 4, 5]
        assert feed.fetch(3, limit=10)[0].seq == 4

    def test_ack_trims_in_memory(self):
        feed = ChangeFeed()
        cur = feed.cursor("c")
        for i in range(4):
            feed.record(f"k{i}", None, "v", ChangeKind.INSERT)
        feed.ack(cur, 3)
        assert feed.pending_records() == 1
        assert feed.depth(cur) == 1

    def test_backpressure_raises_without_consumer(self):
        feed = ChangeFeed(max_pending=4)
        feed.cursor("stuck")  # attached but never acks
        for i in range(4):
            feed.record(f"k{i}", None, "v", ChangeKind.INSERT)
        with pytest.raises(FeedOverflowError):
            feed.record("k4", None, "v", ChangeKind.INSERT)

    def test_backpressure_hook_drains(self):
        feed = ChangeFeed(max_pending=4)
        cur = feed.cursor("c")
        feed.backpressure_hook = lambda: feed.ack(cur, feed.high_water)
        for i in range(20):
            feed.record(f"k{i}", None, "v", ChangeKind.INSERT)
        assert feed.high_water == 20  # never overflowed

    def test_journal_replay_restores_sequencing(self, tmp_path):
        d = str(tmp_path / "cdc")
        feed = ChangeFeed(d, fsync="always")
        feed.record("a", None, "1", ChangeKind.INSERT)
        feed.record("a", "1", "2", ChangeKind.UPDATE)
        feed.record("a", "2", None, ChangeKind.REMOVE)
        feed.close()
        feed2 = ChangeFeed(d)
        assert feed2.high_water == 3
        kinds = [r.kind for r in feed2.replay(0)]
        assert kinds == [ChangeKind.INSERT, ChangeKind.UPDATE, ChangeKind.REMOVE]
        rec = feed2.record("b", None, "x", ChangeKind.INSERT)
        assert rec.seq == 4  # sequencing continues, no reuse
        feed2.close()

    def test_torn_tail_truncates_to_last_intact_record(self, tmp_path):
        import os

        d = str(tmp_path / "cdc")
        feed = ChangeFeed(d, fsync="always")
        for i in range(3):
            feed.record(f"k{i}", None, str(i), ChangeKind.INSERT)
        feed.close()
        path = os.path.join(d, "feed.log")
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x30torn-mid-record")
        feed2 = ChangeFeed(d)
        assert feed2.high_water == 3
        assert [r.key for r in feed2.replay(0)] == ["k0", "k1", "k2"]
        feed2.close()

    def test_unsynced_tail_lost_on_crash(self, tmp_path):
        d = str(tmp_path / "cdc")
        feed = ChangeFeed(d, fsync="batch", sync_interval_bytes=1 << 30)
        feed.record("a", None, "1", ChangeKind.INSERT)
        feed.flush()
        feed.record("b", None, "2", ChangeKind.INSERT)
        lost = feed.simulate_crash()
        assert lost > 0
        feed2 = ChangeFeed(d)
        assert [r.key for r in feed2.replay(0)] == ["a"]
        feed2.close()

    def test_cursor_position_persists(self, tmp_path):
        d = str(tmp_path / "cdc")
        feed = ChangeFeed(d, fsync="always")
        for i in range(6):
            feed.record(f"k{i}", None, "v", ChangeKind.INSERT)
        feed.ack(feed.cursor("c"), 4)
        feed.close()
        feed2 = ChangeFeed(d)
        cur = feed2.cursor("c")
        assert cur.acked == 4
        assert [r.seq for r in feed2.fetch(cur.acked)] == [5, 6]
        feed2.close()

    def test_fetch_behind_ring_replays_from_journal(self, tmp_path):
        feed = ChangeFeed(str(tmp_path / "cdc"), ring_capacity=4)
        for i in range(10):
            feed.record(f"k{i}", None, str(i), ChangeKind.INSERT)
        assert feed.pending_records() == 4  # ring trimmed freely
        got = feed.fetch(0, limit=100)
        assert [r.seq for r in got] == list(range(1, 11))
        feed.close()


# ======================================================================
# The backing database produces the feed
# ======================================================================
def test_backing_database_records_old_and_new():
    feed = ChangeFeed()
    db = BackingDatabase(feed=feed)
    db.put("k", "1")
    db.put("k", "2")
    db.remove("k")
    recs = feed.fetch(0)
    assert [(r.kind, r.old, r.new) for r in recs] == [
        (ChangeKind.INSERT, None, "1"),
        (ChangeKind.UPDATE, "1", "2"),
        (ChangeKind.REMOVE, "2", None),
    ]


def test_backing_database_store_impl_resolved():
    from repro.store.rbtree import RBTree

    db = BackingDatabase(store_impl="rbtree")
    db.put("k", "v")
    assert isinstance(db._tree, RBTree)
    assert db.get("k") == "v"
    assert BackingDatabase().get("absent") is None


# ======================================================================
# The pump: tailing, backfill cut-over, crash/resume
# ======================================================================
def fresh_cache() -> PequodServer:
    server = PequodServer(subtable_config={"t": 2})
    server.add_join(TIMELINE_JOIN)
    return server


def test_pump_applies_changes_to_cache():
    feed = ChangeFeed()
    db = BackingDatabase(feed=feed)
    server = fresh_cache()
    pump = CdcPump(db, feed, server.engine)
    pump.bootstrap()
    db.put("s|ann|bob", "1")
    db.put("p|bob|0100", "hello")
    assert server.scan("t|ann|", "t|ann}") == []  # not yet pumped
    pump.settle()
    assert server.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "hello")]
    db.remove("p|bob|0100")
    pump.settle()
    assert server.scan("t|ann|", "t|ann}") == []


def test_bootstrap_backfills_past_trimmed_feed():
    feed = ChangeFeed(ring_capacity=2, max_pending=4)
    db = BackingDatabase(feed=feed)
    for i in range(8):  # trims the feed: no cursor attached yet
        db.put(f"p|u|{i:04d}", str(i))
    server = fresh_cache()
    pump = CdcPump(db, feed, server.engine)
    pump.bootstrap()
    assert server.scan("p|", "p}") == db.scan_from("", 100)


def test_backfill_cutover_under_concurrent_writes():
    """The acceptance property: a cold cache backfilling in small
    chunks while writes land between every chunk scan converges to
    exactly the database's state — nothing lost, nothing doubled."""
    feed = ChangeFeed()
    db = BackingDatabase(feed=feed)
    for i in range(40):
        db.put(f"p|u{i % 4}|{i:04d}", f"v{i}")
    server = fresh_cache()
    pump = CdcPump(db, feed, server.engine, chunk_size=8)
    pump.begin_backfill()
    tick = 0
    while pump.backfilling:
        pump.backfill_step()
        tick += 1
        # Writes racing the scan: behind the frontier (must arrive via
        # the feed), ahead of it (covered by a later chunk), updates,
        # removes, and brand-new keys at both ends.
        db.put(f"p|u0|{tick:04d}", f"rewrite{tick}")  # behind/within
        db.put(f"p|zz|{tick:04d}", f"tail{tick}")  # ahead of frontier
        db.remove(f"p|u3|{(tick * 4 + 3):04d}")
        db.put(f"p|aa|{tick:04d}", f"head{tick}")
    assert pump.backfill_chunks > 1  # the race actually interleaved
    pump.settle()
    assert pump.records_skipped > 0  # fences actually engaged
    assert server.scan("p|", "p}") == db.scan_from("", 10_000)


def test_consumer_crash_resume_is_gap_free(tmp_path):
    d = str(tmp_path / "cdc")
    feed = ChangeFeed(d, fsync="always")
    db = BackingDatabase(feed=feed)
    server = fresh_cache()
    pump = CdcPump(db, feed, server.engine, batch_size=1)
    pump.bootstrap()
    db.put("s|ann|bob", "1")
    db.put("p|bob|0100", "first")
    db.put("p|bob|0200", "second")
    pump.step()  # consumes ONE record, then the consumer "crashes"
    acked = pump.cursor.acked
    assert 0 < acked < feed.high_water
    # Resume: a new pump on the same warm cache; the persisted cursor
    # position survives (simulate the process boundary by dropping the
    # in-memory cursor so it reloads from disk).
    feed.cursors.clear()
    pump2 = CdcPump(db, feed, server.engine)
    assert pump2.cursor.acked == acked
    pump2.settle()
    assert server.scan("t|ann|", "t|ann}") == [
        ("t|ann|0100|bob", "first"),
        ("t|ann|0200|bob", "second"),
    ]
    feed.close()


_KEYS = [f"p|u{i}|{j:02d}" for i in (0, 1) for j in range(3)]


@settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(_KEYS),
            st.one_of(st.none(), st.text("ab", min_size=1, max_size=3)),
        ),
        max_size=24,
    ),
    crash_after=st.integers(min_value=0, max_value=24),
    data=st.data(),
)
def test_cursor_gap_freedom_property(ops, crash_after, data):
    """Crash the consumer at an arbitrary point in an arbitrary op
    stream (with arbitrary partial consumption before the crash): the
    resumed consumer must converge the cache to exactly the DB state."""
    with tempfile.TemporaryDirectory() as d:
        feed = ChangeFeed(d, fsync="always")
        db = BackingDatabase(feed=feed)
        server = PequodServer()
        pump = CdcPump(db, feed, server.engine, batch_size=2)
        pump.bootstrap()
        for i, (key, value) in enumerate(ops[:crash_after]):
            db.put(key, value) if value is not None else db.remove(key)
            if data.draw(st.booleans(), label=f"step after op {i}"):
                pump.step()
        before = pump.cursor.acked
        feed.cursors.clear()  # consumer process boundary
        pump2 = CdcPump(db, feed, server.engine, batch_size=2)
        assert pump2.cursor.acked == before  # resumed exactly, no gap
        for key, value in ops[crash_after:]:
            db.put(key, value) if value is not None else db.remove(key)
        pump2.settle()
        assert server.scan("p|", "p}") == db.scan_from("", 10_000)
        feed.close()


# ======================================================================
# Deployment conformance: write-around == write-through, by digest
# ======================================================================
def state_digest(client) -> str:
    """SHA-256 over every table in key order (computed ranges are
    materialized first, so demand-filled backends compare equal)."""
    for user in ("ann", "liz", "mike", "zoe"):
        client.scan_prefix(f"t|{user}|")
        client.scan_prefix(f"karma|{user}")
    state = []
    for table in ("p", "s", "t", "vote", "karma"):
        state.append((table, client.scan_prefix(f"{table}|")))
    return hashlib.sha256(repr(state).encode()).hexdigest()


def twip_workload(client, phase: int) -> None:
    """The §2 Twip slice from the cluster conformance suite, with the
    write-around barrier at each phase end."""
    users = ("ann", "liz", "mike", "zoe")
    if phase == 0:
        client.add_join(TIMELINE_JOIN)
        client.add_join(KARMA)
        for user in users:
            for poster in users:
                if poster != user:
                    client.put(f"s|{user}|{poster}", "1")
        for i, poster in enumerate(users):
            client.put(f"p|{poster}|{format_time(100 + i)}", f"t{i}")
        for i, voter in enumerate(users):
            client.put(f"vote|ann|{i:04d}|{voter}", "1")
    else:
        client.put(f"p|ann|{format_time(200)}", "second wave")
        client.remove("s|zoe|ann")
        client.put(f"p|mike|{format_time(210)}", "late post")
        client.put("s|ann|ann", "1")
        client.put("vote|mike|0000|ann", "1")
        client.remove("vote|ann|0001|liz")
    client.settle()
    client.settle_cdc()


@pytest.mark.parametrize("backend", ["local", "rpc"])
def test_write_around_matches_write_through(backend):
    digests = {}
    for mode in MODES:
        with make_client(
            backend, mode=mode, subtable_config={"t": 2}
        ) as client:
            for phase in (0, 1):
                twip_workload(client, phase)
            digests[mode] = state_digest(client)
    assert digests["write-around"] == digests["write-through"]


def test_write_around_matches_write_through_procs():
    digests = {}
    for mode in MODES:
        with ProcCluster(
            2,
            tables=("p", "s", "t", "vote", "karma"),
            splits=("f", "m", "s"),
            replication=2,
            in_process=True,
            mode=mode,
        ) as pc:
            client = ProcClusterClient.for_cluster(pc)
            try:
                for phase in (0, 1):
                    twip_workload(client, phase)
                digests[mode] = state_digest(client)
            finally:
                client.close()
    assert digests["write-around"] == digests["write-through"]


def test_write_around_durable_restart(tmp_path):
    """In write-around mode the CDC journal IS the durability story:
    a restarted server rebuilds the DB from the journal, backfills the
    cache, and serves identical state."""
    d = str(tmp_path / "srv")

    def boot() -> PequodServer:
        srv = PequodServer(
            mode="write-around", data_dir=d, subtable_config={"t": 2}
        )
        srv.add_join(TIMELINE_JOIN)
        return srv

    srv = boot()
    srv.put("s|ann|bob", "1")
    srv.put("p|bob|0100", "durable first")
    srv.settle_cdc()
    expected = srv.scan("t|ann|", "t|ann}")
    assert expected == [("t|ann|0100|bob", "durable first")]
    srv.close()
    srv2 = boot()
    srv2.settle_cdc()
    assert srv2.scan("t|ann|", "t|ann}") == expected
    assert srv2.scan("p|", "p}") == [("p|bob|0100", "durable first")]
    srv2.close()


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        PequodServer(mode="write-behind")


# ======================================================================
# Chaos: deferred/redelivered feed batches still converge
# ======================================================================
@pytest.mark.chaos
def test_cdc_lag_chaos_converges_to_oracle():
    def run(faulted: bool) -> str:
        with make_client(
            "local", mode="write-around", subtable_config={"t": 2}
        ) as client:
            client.add_join(TIMELINE_JOIN)
            client.add_join(KARMA)
            injector = None
            if faulted:
                server = client._async.server  # noqa: SLF001
                injector = CdcLag(defer_every=2).install(server.cdc)
            for phase in (0, 1):
                twip_workload(client, phase)
            digest = state_digest(client)
            if injector is not None:
                assert injector.batches_deferred > 0  # the fault fired
        return digest

    assert run(faulted=True) == run(faulted=False)


@pytest.mark.chaos
def test_cdc_lag_delay_inflates_measured_lag():
    with make_client("local", mode="write-around") as client:
        server = client._async.server  # noqa: SLF001
        CdcLag(delay_s=0.02, limit=2).install(server.cdc)
        client.put("p|bob|0100", "x")
        client.put("p|bob|0200", "y")
        client.settle_cdc()
        assert server.cdc.lag.percentile(99) >= 0.01
        assert client.get("p|bob|0100") == "x"
