"""Deeper join shapes: three sources, mixed annotations, layered
aggregates."""

from repro import PequodServer, SimClock


class TestThreeSourceJoins:
    """A copy filtered through two check sources."""

    JOIN = (
        "feed|<user>|<topic>|<time>|<author> = "
        "check follow|<user>|<author> "
        "check tag|<topic>|<author>|<time> "
        "copy story|<author>|<time>"
    )

    def setup_method(self):
        self.srv = PequodServer()
        self.srv.add_join(self.JOIN)
        self.srv.put("follow|ann|bob", "1")
        self.srv.put("tag|rust|bob|0100", "1")
        self.srv.put("story|bob|0100", "a rust story")

    def test_triple_match_emits(self):
        got = self.srv.scan("feed|ann|", "feed|ann}")
        assert got == [("feed|ann|rust|0100|bob", "a rust story")]

    def test_missing_middle_check_blocks(self):
        self.srv.remove("tag|rust|bob|0100")
        assert self.srv.scan("feed|ann|", "feed|ann}") == []

    def test_eager_copy_through_two_checks(self):
        self.srv.scan("feed|ann|", "feed|ann}")
        self.srv.put("tag|go|bob|0200", "1")
        self.srv.put("story|bob|0200", "a go story")
        got = self.srv.scan("feed|ann|", "feed|ann}")
        assert ("feed|ann|go|0200|bob", "a go story") in got

    def test_unfollow_clears_whole_feed(self):
        self.srv.scan("feed|ann|", "feed|ann}")
        self.srv.remove("follow|ann|bob")
        assert self.srv.scan("feed|ann|", "feed|ann}") == []

    def test_new_tag_backfills_lazily(self):
        self.srv.scan("feed|ann|", "feed|ann}")
        self.srv.put("story|bob|0300", "untagged story")
        self.srv.put("tag|ml|bob|0300", "1")  # lazy partial invalidation
        got = self.srv.scan("feed|ann|", "feed|ann}")
        assert ("feed|ann|ml|0300|bob", "untagged story") in got


class TestMixedAnnotationsOneRange:
    """Push and snapshot joins sharing one output range (§3.4)."""

    def setup_method(self):
        self.clock = SimClock()
        self.srv = PequodServer(clock=self.clock)
        self.srv.add_join("mix|<k>|live = copy live|<k>")
        self.srv.add_join("mix|<k>|slow = snapshot 30 copy slow|<k>")

    def test_both_classes_served_in_one_scan(self):
        self.srv.put("live|a", "1")
        self.srv.put("slow|a", "2")
        got = self.srv.scan("mix|a|", "mix|a}")
        assert got == [("mix|a|live", "1"), ("mix|a|slow", "2")]

    def test_push_half_stays_fresh_within_snapshot_window(self):
        self.srv.put("live|a", "1")
        self.srv.put("slow|a", "2")
        self.srv.scan("mix|a|", "mix|a}")
        self.srv.put("live|a", "1b")
        self.srv.put("slow|a", "2b")
        got = dict(self.srv.scan("mix|a|", "mix|a}"))
        # The shared range carries the snapshot expiry, so within the
        # window both halves serve the cached values; the push half's
        # eager update already refreshed its key in place.
        assert got["mix|a|live"] == "1b"
        assert got["mix|a|slow"] == "2"

    def test_expiry_refreshes_both(self):
        self.srv.put("live|a", "1")
        self.srv.put("slow|a", "2")
        self.srv.scan("mix|a|", "mix|a}")
        self.srv.put("slow|a", "2b")
        self.clock.advance(31)
        got = dict(self.srv.scan("mix|a|", "mix|a}"))
        assert got["mix|a|slow"] == "2b"


class TestLayeredAggregates:
    def test_sum_over_count_chain(self):
        """sum join sourced by a count join's output."""
        srv = PequodServer()
        srv.add_join("percat|<cat>|<item> = count ev|<cat>|<item>|<id>")
        srv.add_join("total|<cat> = sum percat|<cat>|<item>")
        srv.put("ev|fruit|apple|1", "")
        srv.put("ev|fruit|apple|2", "")
        srv.put("ev|fruit|pear|3", "")
        assert srv.get("total|fruit") == "3"
        srv.put("ev|fruit|pear|4", "")
        assert srv.get("total|fruit") == "4"

    def test_copy_of_aggregate_tracks_updates(self):
        srv = PequodServer()
        srv.add_join("karma|<a> = count vote|<a>|<id>")
        srv.add_join("board|<a>|k = copy karma|<a>")
        srv.put("vote|ann|1", "")
        assert srv.scan("board|ann|", "board|ann}") == [("board|ann|k", "1")]
        srv.put("vote|ann|2", "")
        assert srv.scan("board|ann|", "board|ann}") == [("board|ann|k", "2")]
        srv.remove("vote|ann|1")
        srv.remove("vote|ann|2")
        assert srv.scan("board|ann|", "board|ann}") == []


class TestReplicatedReads:
    """§2.4: directing reads for popular ranges to multiple servers
    establishes incrementally-maintained replicas."""

    def test_replicas_on_multiple_compute_nodes_stay_fresh(self):
        from repro.apps.twip import TIMELINE_JOIN
        from repro.distrib import Cluster

        cluster = Cluster(2, 3, ("p", "s"), joins=TIMELINE_JOIN)
        cluster.put("s|ann|star", "1")
        cluster.put("p|star|0100", "first")
        # Load-balance ann's reads across two explicit replicas.
        replica_a, replica_b = cluster.compute_nodes[0], cluster.compute_nodes[1]
        assert replica_a.scan("t|ann|", "t|ann}") == [
            ("t|ann|0100|star", "first")
        ]
        assert replica_b.scan("t|ann|", "t|ann}") == [
            ("t|ann|0100|star", "first")
        ]
        # Both replicas are now incrementally maintained.
        cluster.put("p|star|0200", "second")
        cluster.settle()
        for replica in (replica_a, replica_b):
            got = replica.scan("t|ann|", "t|ann}")
            assert [v for _, v in got] == ["first", "second"], replica.name

    def test_home_tracks_subscription_per_replica(self):
        from repro.apps.twip import TIMELINE_JOIN
        from repro.distrib import Cluster

        cluster = Cluster(1, 2, ("p", "s"), joins=TIMELINE_JOIN)
        cluster.put("s|ann|star", "1")
        cluster.compute_nodes[0].scan("t|ann|", "t|ann}")
        one = cluster.total_subscriptions()
        cluster.compute_nodes[1].scan("t|ann|", "t|ann}")
        assert cluster.total_subscriptions() > one
