"""Unit tests for the OrderedStore facade."""

import pytest

from repro.store import OrderedStore, SharedValue


class TestBasicOps:
    def test_put_get(self):
        store = OrderedStore()
        store.put("p|bob|0100", "hi")
        assert store.get("p|bob|0100") == "hi"

    def test_get_missing_returns_default(self):
        store = OrderedStore()
        assert store.get("nope") is None
        assert store.get("nope", "dflt") == "dflt"

    def test_empty_key_rejected(self):
        store = OrderedStore()
        with pytest.raises(ValueError):
            store.put("", "v")

    def test_remove(self):
        store = OrderedStore()
        store.put("k|1", "v")
        assert store.remove("k|1")
        assert not store.remove("k|1")
        assert store.get("k|1") is None

    def test_len_counts_all_tables(self):
        store = OrderedStore()
        store.put("a|1", "x")
        store.put("b|1", "y")
        store.put("b|2", "z")
        assert len(store) == 3


class TestScan:
    def test_scan_within_table(self):
        store = OrderedStore()
        store.put("s|ann|bob", "1")
        store.put("s|ann|liz", "1")
        store.put("s|bob|ann", "1")
        got = store.scan("s|ann|", "s|ann}")
        assert got == [("s|ann|bob", "1"), ("s|ann|liz", "1")]

    def test_scan_across_tables(self):
        store = OrderedStore()
        store.put("a|1", "x")
        store.put("b|1", "y")
        store.put("c|1", "z")
        got = store.scan("a|", "c|2")
        assert got == [("a|1", "x"), ("b|1", "y"), ("c|1", "z")]

    def test_scan_iter_matches_scan(self):
        store = OrderedStore()
        for i in range(10):
            store.put(f"p|{i:02d}", str(i))
        assert list(store.scan_iter("p|", "p}")) == store.scan("p|", "p}")

    def test_count(self):
        store = OrderedStore()
        for i in range(10):
            store.put(f"p|{i:02d}", str(i))
        assert store.count("p|03", "p|07") == 4

    def test_remove_range(self):
        store = OrderedStore()
        for i in range(10):
            store.put(f"p|{i:02d}", str(i))
        removed = store.remove_range("p|03", "p|07")
        assert removed == 4
        assert store.count("p|", "p}") == 6


class TestSubtableConfig:
    def test_configured_depth_applies(self):
        store = OrderedStore(subtable_config={"t": 2})
        store.put("t|ann|0100|bob", "x")
        assert store.tables["t"].subtable_depth == 2
        assert store.tables["t"].subtable_count() == 1

    def test_configure_after_creation_empty_table_ok(self):
        store = OrderedStore()
        store.table("t")
        store.configure_subtables("t", 2)
        store.put("t|ann|0100|bob", "x")
        assert store.tables["t"].subtable_depth == 2

    def test_configure_nonempty_table_rejected(self):
        store = OrderedStore()
        store.put("t|ann|0100|bob", "x")
        with pytest.raises(ValueError):
            store.configure_subtables("t", 2)

    def test_reconfigure_same_depth_is_noop(self):
        store = OrderedStore(subtable_config={"t": 2})
        store.put("t|ann|0100|bob", "x")
        store.configure_subtables("t", 2)
        assert store.get("t|ann|0100|bob") == "x"


class TestSharedValues:
    def test_shared_value_materializes_to_string(self):
        store = OrderedStore()
        shared = SharedValue("tweet text")
        store.put("t|ann|0100|bob", shared)
        store.put("t|liz|0100|bob", shared)
        assert store.get("t|ann|0100|bob") == "tweet text"
        assert store.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "tweet text")]

    def test_sharing_reduces_memory(self):
        payload = "x" * 1000
        unshared = OrderedStore()
        for i in range(20):
            unshared.put(f"t|u{i:02d}|0001|b", payload)
        shared_store = OrderedStore()
        shared = SharedValue(payload)
        for i in range(20):
            shared_store.put(f"t|u{i:02d}|0001|b", shared)
        assert shared_store.memory_bytes() < unshared.memory_bytes() / 5

    def test_shared_refcount_released_on_remove(self):
        store = OrderedStore()
        shared = SharedValue("payload")
        store.put("t|a|1", shared)
        store.put("t|b|1", shared)
        assert shared.refs == 2
        store.remove("t|a|1")
        assert shared.refs == 1
        store.put("t|b|1", "plain")  # overwrite releases too
        assert shared.refs == 0

    def test_get_raw_exposes_shared_value(self):
        store = OrderedStore()
        shared = SharedValue("p")
        store.put("t|a|1", shared)
        assert store.get_raw("t|a|1") is shared
        assert store.get_raw("missing") is None


class TestMemory:
    def test_memory_bytes_sums_tables(self):
        store = OrderedStore()
        store.put("a|1", "xx")
        store.put("b|1", "yy")
        assert store.memory_bytes() == (
            store.tables["a"].memory_bytes + store.tables["b"].memory_bytes
        )
