"""Unit tests for the cross-server subscription registry (§2.4)."""

from repro.core.operators import ChangeKind
from repro.distrib.subscription import (
    SubscriptionRegistry,
    decode_update,
    encode_update,
)


class TestRegistry:
    def test_subscribe_and_lookup(self):
        reg = SubscriptionRegistry()
        reg.subscribe("compute00", "p|bob|", "p|bob}")
        assert reg.subscribers_of("p|bob|0100") == {"compute00"}
        assert reg.subscribers_of("p|liz|0100") == set()

    def test_multiple_subscribers_same_range(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|bob|", "p|bob}")
        reg.subscribe("c1", "p|bob|", "p|bob}")
        assert reg.subscribers_of("p|bob|1") == {"c0", "c1"}
        assert reg.subscription_count() == 2

    def test_resubscription_idempotent(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|bob|", "p|bob}")
        reg.subscribe("c0", "p|bob|", "p|bob}")
        assert reg.subscription_count() == 1
        assert reg.installed == 1

    def test_overlapping_ranges(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|", "p}")
        reg.subscribe("c1", "p|bob|0100", "p|bob|0200")
        assert reg.subscribers_of("p|bob|0150") == {"c0", "c1"}
        assert reg.subscribers_of("p|bob|0300") == {"c0"}

    def test_unsubscribe(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|bob|", "p|bob}")
        assert reg.unsubscribe("c0", "p|bob|", "p|bob}")
        assert not reg.unsubscribe("c0", "p|bob|", "p|bob}")
        assert reg.subscribers_of("p|bob|1") == set()

    def test_ranges_for_subscriber(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|bob|", "p|bob}")
        reg.subscribe("c0", "s|ann|", "s|ann}")
        reg.subscribe("c1", "p|liz|", "p|liz}")
        assert sorted(reg.ranges_for("c0")) == [
            ("p|bob|", "p|bob}"),
            ("s|ann|", "s|ann}"),
        ]

    def test_memory_accounting_grows(self):
        reg = SubscriptionRegistry()
        before = reg.memory_bytes()
        reg.subscribe("c0", "p|bob|", "p|bob}")
        assert reg.memory_bytes() > before

    def test_tables_kept_separate(self):
        reg = SubscriptionRegistry()
        reg.subscribe("c0", "p|x|", "p|x}")
        reg.subscribe("c1", "s|x|", "s|x}")
        assert reg.subscribers_of("p|x|1") == {"c0"}
        assert reg.subscribers_of("s|x|1") == {"c1"}


class TestUpdateCodec:
    def test_roundtrip_insert(self):
        update = ("p|bob|1", None, "value", ChangeKind.INSERT)
        assert decode_update(encode_update(update)) == update

    def test_roundtrip_remove(self):
        update = ("p|bob|1", "old", None, ChangeKind.REMOVE)
        assert decode_update(encode_update(update)) == update

    def test_roundtrip_update(self):
        update = ("p|bob|1", "old", "new", ChangeKind.UPDATE)
        assert decode_update(encode_update(update)) == update
