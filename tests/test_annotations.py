"""Tests for performance annotations: push, pull, snapshot (paper §3.4)."""

from repro import PequodServer, SimClock


class TestPullJoins:
    def test_pull_not_cached(self):
        srv = PequodServer()
        srv.add_join("v|<a> = pull copy src|<a>")
        srv.put("src|x", "1")
        assert srv.scan("v|", "v}") == [("v|x", "1")]
        # Nothing materialized in the store.
        assert srv.store.count("v|", "v}") == 0

    def test_pull_recomputed_every_query(self):
        srv = PequodServer()
        srv.add_join("v|<a> = pull copy src|<a>")
        srv.put("src|x", "1")
        srv.scan("v|", "v}")
        before = srv.stats.get("pull_executions")
        srv.scan("v|", "v}")
        assert srv.stats.get("pull_executions") == before + 1

    def test_pull_always_fresh(self):
        srv = PequodServer()
        srv.add_join("v|<a> = pull copy src|<a>")
        srv.put("src|x", "1")
        assert srv.scan("v|", "v}") == [("v|x", "1")]
        srv.put("src|x", "2")
        assert srv.scan("v|", "v}") == [("v|x", "2")]
        srv.remove("src|x")
        assert srv.scan("v|", "v}") == []

    def test_pull_get(self):
        srv = PequodServer()
        srv.add_join("v|<a> = pull copy src|<a>")
        srv.put("src|x", "1")
        assert srv.get("v|x") == "1"
        assert srv.get("v|y") is None

    def test_celebrity_configuration(self):
        """The §2.3 celebrity join set: push for normals, pull for celebs."""
        srv = PequodServer()
        srv.add_join("ct|<time>|<poster> = copy cp|<poster>|<time>")
        srv.add_join(
            "t|<user>|<time>|<poster> = "
            "check s|<user>|<poster> copy p|<poster>|<time>"
        )
        srv.add_join(
            "t|<user>|<time>|<poster> = "
            "pull check s|<user>|<poster> copy ct|<time>|<poster>"
        )
        srv.put("s|ann|bob", "1")
        srv.put("s|ann|celeb", "1")
        srv.put("p|bob|0100", "normal tweet")
        srv.put("cp|celeb|0150", "celebrity tweet")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [
            ("t|ann|0100|bob", "normal tweet"),
            ("t|ann|0150|celeb", "celebrity tweet"),
        ]
        # Celebrity tweets are not copied into per-user timelines.
        stored = [k for k, _ in srv.store.scan("t|", "t}")]
        assert stored == ["t|ann|0100|bob"]

    def test_celebrity_unsubscribed_filtered(self):
        srv = PequodServer()
        srv.add_join("ct|<time>|<poster> = copy cp|<poster>|<time>")
        srv.add_join(
            "t|<user>|<time>|<poster> = "
            "pull check s|<user>|<poster> copy ct|<time>|<poster>"
        )
        srv.put("s|ann|celeb", "1")
        srv.put("cp|celeb|0100", "for fans")
        srv.put("cp|other|0110", "not followed")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0100|celeb", "for fans")]

    def test_pull_memory_savings(self):
        """§2.3: celebrity joins save memory versus copying to all fans."""
        push = PequodServer()
        push.add_join(
            "t|<u>|<time>|<poster> = check s|<u>|<poster> copy p|<poster>|<time>"
        )
        pull = PequodServer()
        pull.add_join("ct|<time>|<poster> = copy cp|<poster>|<time>")
        pull.add_join(
            "t|<u>|<time>|<poster> = "
            "pull check s|<u>|<poster> copy ct|<time>|<poster>"
        )
        fans = [f"fan{i:03d}" for i in range(50)]
        text = "celebrity wisdom " * 5
        for srv, table, store_key in ((push, "p", "p|celeb"), (pull, "cp", "cp|celeb")):
            for fan in fans:
                srv.put(f"s|{fan}|celeb", "1")
            srv.put(f"{store_key}|0100", text)
            for fan in fans:
                srv.scan(f"t|{fan}|", f"t|{fan}}}")
        assert pull.memory_bytes() < push.memory_bytes() / 2


class TestSnapshotJoins:
    def setup_method(self):
        self.clock = SimClock()
        self.srv = PequodServer(clock=self.clock)
        self.srv.add_join("v|<a> = snapshot 30 copy src|<a>")

    def test_snapshot_cached_without_maintenance(self):
        self.srv.put("src|x", "1")
        assert self.srv.scan("v|", "v}") == [("v|x", "1")]
        self.srv.put("src|x", "2")  # no updaters: stays stale
        assert self.srv.scan("v|", "v}") == [("v|x", "1")]

    def test_snapshot_refreshes_after_expiry(self):
        self.srv.put("src|x", "1")
        self.srv.scan("v|", "v}")
        self.srv.put("src|x", "2")
        self.clock.advance(31)
        assert self.srv.scan("v|", "v}") == [("v|x", "2")]

    def test_snapshot_not_refreshed_before_expiry(self):
        self.srv.put("src|x", "1")
        self.srv.scan("v|", "v}")
        before = self.srv.stats.get("recomputations")
        self.clock.advance(29)
        self.srv.put("src|x", "2")
        self.srv.scan("v|", "v}")
        assert self.srv.stats.get("recomputations") == before

    def test_snapshot_no_updaters_installed(self):
        self.srv.put("src|x", "1")
        self.srv.scan("v|", "v}")
        assert self.srv.stats.get("updaters_installed", ) == 0

    def test_snapshot_handles_removals_on_refresh(self):
        self.srv.put("src|x", "1")
        self.srv.put("src|y", "2")
        assert len(self.srv.scan("v|", "v}")) == 2
        self.srv.remove("src|y")
        self.clock.advance(31)
        assert self.srv.scan("v|", "v}") == [("v|x", "1")]


class TestSourceOrderAnnotation:
    """§3.4: source order is a performance annotation, not semantics."""

    def test_both_orders_same_results(self):
        a = PequodServer()
        a.add_join(
            "t|<u>|<time>|<p> = check s|<u>|<p> copy p|<p>|<time>"
        )
        b = PequodServer()
        b.add_join(
            "t|<u>|<time>|<p> = copy p|<p>|<time> check s|<u>|<p>"
        )
        for srv in (a, b):
            srv.put("s|ann|bob", "1")
            srv.put("s|ann|liz", "1")
            srv.put("p|bob|0100", "b1")
            srv.put("p|liz|0150", "l1")
            srv.put("p|jim|0120", "unfollowed")
        assert a.scan("t|ann|", "t|ann}") == b.scan("t|ann|", "t|ann}")

    def test_check_first_examines_fewer_keys(self):
        """Scanning the small subscriptions range first prunes work."""
        def build(spec):
            srv = PequodServer()
            srv.add_join(spec)
            srv.put("s|ann|bob", "1")
            for poster in [f"u{i:03d}" for i in range(40)]:
                srv.put(f"p|{poster}|0100", "x")
            srv.put("p|bob|0100", "followed")
            srv.scan("t|ann|", "t|ann}")
            return srv.stats.get("source_keys_examined")

        check_first = build(
            "t|<u>|<time>|<p> = check s|<u>|<p> copy p|<p>|<time>"
        )
        copy_first = build(
            "t|<u>|<time>|<p> = copy p|<p>|<time> check s|<u>|<p>"
        )
        assert check_first < copy_first
