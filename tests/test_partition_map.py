"""PartitionMap edge cases + map-version fencing semantics.

The map is the cluster's routing truth: these tests pin the awkward
shapes (one node owning everything, ranges straddling table prefixes)
and the reconfiguration contract — a stale writer gets
``WrongOwnerError`` carrying the new version, refreshes, and retries;
a watch spanning a live migration sees every event exactly once.
"""

import pytest

from repro.client.procs import ProcClusterClient
from repro.net import protocol
from repro.net.rpc_client import RpcError
from repro.distrib.partition_map import (
    KEYSPACE_END,
    HashPartitionMap,
    PartitionMap,
)
from repro.distrib.partition import Partitioner
from repro.distrib.procs import ProcCluster

NODES3 = {
    "a": ("127.0.0.1", 1, 2),
    "b": ("127.0.0.1", 3, 4),
    "c": ("127.0.0.1", 5, 6),
}


def test_single_node_ring_owns_everything():
    pmap = PartitionMap.for_tables(
        ["solo"], {"solo": ("127.0.0.1", 1, 2)}, tables=("p", "t"),
        splits=("m",),
    )
    for key in ("", "a", "p|alice", "p|zz", "t|mike|0100", "~~~"):
        assert pmap.owner_of(key) == "solo"
        assert pmap.replicas_of(key) == ()
    assert pmap.owns_range("solo", "", KEYSPACE_END)
    # The whole ring is still cut at the table/split boundaries, but
    # every slice resolves to the one node.
    slices = pmap.slices("", KEYSPACE_END)
    assert slices[0][0] == "" and slices[-1][1] == KEYSPACE_END
    for lo, hi, r in slices:
        assert r.primary == "solo"


def test_single_node_promote_refuses_last_replica():
    pmap = PartitionMap.for_tables(
        ["solo"], {"solo": ("127.0.0.1", 1, 2)}, tables=("p",)
    )
    with pytest.raises(Exception):
        pmap.promote("solo")


def test_ranges_straddle_table_prefixes():
    pmap = PartitionMap.for_tables(
        ["a", "b", "c"], NODES3, tables=("p", "t"), splits=("m",),
        replication=2,
    )
    # Contiguous cover of the whole key space, no gaps, no overlaps.
    assert pmap.ranges[0].lo == ""
    assert pmap.ranges[-1].hi == KEYSPACE_END
    for prev, cur in zip(pmap.ranges, pmap.ranges[1:]):
        assert prev.hi == cur.lo
    # Aligned co-location: the i-th slice of p and of t share a home.
    assert pmap.owner_of("p|alice") == pmap.owner_of("t|alice")
    assert pmap.owner_of("p|zed") == pmap.owner_of("t|zed")
    # Keys between the named tables (the straddling tile: "p}" < key
    # < "t|") still have exactly one owner.
    for key in ("q|anything", "s|ann|bob", "pz", "t}trailer"):
        owner = pmap.owner_of(key)
        assert owner in NODES3
        assert pmap.replicas_of(key) and owner not in pmap.replicas_of(key)
    # A scan range straddling the p/t boundary splits per owner but
    # covers every byte exactly once.
    slices = pmap.slices("p|x", "t|b")
    assert slices[0][0] == "p|x" and slices[-1][1] == "t|b"
    for prev, cur in zip(slices, slices[1:]):
        assert prev[1] == cur[0]


def test_reassign_bumps_version_and_keeps_old_primary_as_replica():
    pmap = PartitionMap.for_tables(
        ["a", "b", "c"], NODES3, tables=("p",), splits=("m",),
        replication=2,
    )
    r = pmap.range_for("p|alice")
    target = next(n for n in NODES3 if n != r.primary)
    newer = pmap.reassign(r.lo, r.hi, target)
    assert newer.version == pmap.version + 1
    assert newer.owner_of("p|alice") == target
    assert r.primary in newer.replicas_of("p|alice")
    changed = list(pmap.changed_ranges(newer))
    assert changed == [(r.lo, r.hi, r.primary, target)]


def test_wire_roundtrip():
    pmap = PartitionMap.for_tables(
        ["a", "b", "c"], NODES3, tables=("p", "s", "t"), splits=("h", "r"),
        replication=3,
    )
    back = PartitionMap.from_wire(pmap.to_wire())
    assert back.version == pmap.version
    assert back.nodes == pmap.nodes
    assert [(r.lo, r.hi, r.primary, r.replicas) for r in back.ranges] == [
        (r.lo, r.hi, r.primary, r.replicas) for r in pmap.ranges
    ]


def test_hash_partition_map_matches_partitioner():
    part = Partitioner(("p", "s"), ["base00", "base01"])
    hmap = HashPartitionMap(part)
    for key in ("p|u1|0001", "s|u2|u3", "t|u1|0009|u2", "x|misc"):
        home = part.home_of(key)
        if home is not None:
            assert hmap.owner_of(key) == home
            assert hmap.home_of(key) == home
        else:
            assert hmap.home_of(key) is None
            assert hmap.owner_of(key) in ("base00", "base01")


# ----------------------------------------------------------------------
# Fencing + watch across a live migration (in-process cluster: same
# code path as the subprocess deployment, minus fork overhead).
# ----------------------------------------------------------------------
TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def test_stale_write_fenced_then_retried():
    with ProcCluster(
        2, tables=("p",), splits=("m",), replication=1, in_process=True
    ) as cluster:
        stale = cluster.map
        r = stale.range_for("p|alice")
        target = "node1" if r.primary == "node0" else "node0"
        cluster.migrate(r.lo, r.hi, target)
        # A writer still routing on the old map gets the typed fence,
        # and the fencing node has already adopted the newer map.
        with pytest.raises(RpcError) as info:
            cluster._call(r.primary, "put", "p|alice", "stale write")
        assert info.value.code == protocol.ERR_CODE_WRONG_OWNER
        fenced_map = PartitionMap.from_wire(
            cluster._call(r.primary, "partition_map")
        )
        assert fenced_map.version > stale.version
        # ...and the unified client turns that into refresh + retry.
        client = ProcClusterClient.for_cluster(cluster)
        client._async.map = stale  # force the stale view
        client.put("p|alice", "retried")
        assert client.map.version == cluster.map.version
        assert client.get("p|alice") == "retried"
        client.close()


def test_watch_across_migration_no_dup_no_drop():
    with ProcCluster(
        2, tables=("p", "s", "t"), splits=("m",), replication=1,
        in_process=True,
    ) as cluster:
        client = ProcClusterClient.for_cluster(cluster)
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "warm")
        client.settle()
        assert client.scan_prefix("t|ann|") == [("t|ann|0100|bob", "warm")]

        watch = client.iter_watch("t|ann|", "t|ann}")
        client.put("p|bob|0200", "before move")
        client.settle()

        r = cluster.map.range_for("t|ann|")
        target = "node1" if r.primary == "node0" else "node0"
        cluster.migrate(r.lo, r.hi, target)

        client.put("p|bob|0300", "after move")
        client.settle()
        events = [(e.key, e.new) for e in watch.drain()]
        # Exactly one event per maintained timeline insert: nothing
        # doubled by the handed-off subscription, nothing dropped in
        # the snapshot/tail window.
        assert events == [
            ("t|ann|0200|bob", "before move"),
            ("t|ann|0300|bob", "after move"),
        ]
        watch.close()
        client.close()
