"""The read-path overhaul: validation memo, pluggable store, parity.

The validation memo (paper §4.2's hint idea applied to status-range
validation) must never serve stale data: every test here mutates the
cover out from under a remembered range — invalidation, splits,
eviction, snapshot expiry — and asserts reads stay correct.  The
end-to-end parity tests run the same workload across both ``OrderedMap``
implementations and both pattern paths and require byte-identical
output, the same guarantee `repro bench read_path` asserts at scale.
"""

import pytest

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.client import make_client
from repro.core.clock import SimClock
from repro.core.pattern import set_pattern_compilation
from repro.store.omap import MAP_IMPLS, resolve_map_impl
from repro.store.rbtree import RBTree
from repro.store.sortedarray import SortedArrayMap


def timeline_server(**kwargs) -> PequodServer:
    srv = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2}, **kwargs)
    srv.add_join(TIMELINE_JOIN)
    return srv


class TestValidationMemo:
    def test_repeated_scans_hit_the_memo(self):
        srv = timeline_server()
        srv.put("s|ann|bob", "1")
        for i in range(10):
            srv.put(f"p|bob|{i:04d}", f"tweet {i}")
        srv.scan("t|ann|", "t|ann}")
        assert srv.stats.get("validation_memo_hits") == 0
        srv.scan("t|ann|0005", "t|ann}")  # same upper bound, later lo
        srv.scan("t|ann|0008", "t|ann}")
        assert srv.stats.get("validation_memo_hits") == 2

    def test_memo_disabled_never_hits(self):
        srv = timeline_server()
        srv.engine.enable_validation_memo = False
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.scan("t|ann|", "t|ann}")
        assert srv.stats.get("validation_memo_hits") == 0

    def test_writes_through_memo_stay_visible(self):
        srv = timeline_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "first")
        srv.scan("t|ann|", "t|ann}")
        srv.put("p|bob|0002", "second")  # eager updater, range stays valid
        got = srv.scan("t|ann|", "t|ann}")
        assert [k for k, _ in got] == ["t|ann|0001|bob", "t|ann|0002|bob"]
        assert srv.stats.get("validation_memo_hits") >= 1

    def test_complete_invalidation_defeats_the_hint(self):
        srv = timeline_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.scan("t|ann|", "t|ann}")  # memo hit
        srv.remove("s|ann|bob")  # lazy check removal -> invalidate
        assert srv.scan("t|ann|", "t|ann}") == []
        # And the rebuilt range is remembered again afterwards.
        hits = srv.stats.get("validation_memo_hits")
        srv.scan("t|ann|", "t|ann}")
        assert srv.stats.get("validation_memo_hits") == hits + 1

    def test_pending_log_defeats_the_hint(self):
        srv = timeline_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.put("s|ann|liz", "1")  # lazy partial invalidation (pending)
        srv.put("p|liz|0002", "from liz")
        got = srv.scan("t|ann|", "t|ann}")
        assert ("t|ann|0002|liz", "from liz") in got

    def test_eviction_detaches_the_hint(self):
        srv = timeline_server(memory_limit=1)  # evicts after every op
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0001|bob", "x")]
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0001|bob", "x")]
        assert srv.stats.get("evictions") > 0

    def test_snapshot_expiry_defeats_the_hint(self):
        clock = SimClock()
        srv = PequodServer(subtable_config={"t": 2}, clock=clock)
        srv.add_join(
            "t|<user>|<time>|<poster> = snapshot 30 "
            "check s|<user>|<poster> copy p|<poster>|<time>"
        )
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        clock.advance(5)
        srv.scan("t|ann|", "t|ann}")
        recomputes = srv.stats.get("recomputations")
        clock.advance(60)  # past the snapshot interval
        srv.scan("t|ann|", "t|ann}")
        assert srv.stats.get("recomputations") == recomputes + 1

    def test_group_split_shrinks_the_hint(self):
        """An aggregate min-retreat splits the remembered range; the
        shrunk hint no longer covers whole-table scans and reads stay
        exact."""
        srv = PequodServer()
        srv.add_join("low|<poster> = min p|<poster>|<time>")
        srv.put("p|bob|0005", "five")
        srv.put("p|bob|0009", "nine")
        assert srv.scan("low|", "low}") == [("low|bob", "five")]
        assert srv.scan("low|", "low}") == [("low|bob", "five")]
        srv.remove("p|bob|0005")  # min departs -> group invalidation/split
        assert srv.scan("low|", "low}") == [("low|bob", "nine")]


class TestPluggableStore:
    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError):
            resolve_map_impl("btree")

    def test_names_resolve(self):
        assert resolve_map_impl("rbtree") is RBTree
        assert resolve_map_impl("sortedarray") is SortedArrayMap
        assert callable(resolve_map_impl(None))

    def test_factory_callable_passthrough(self):
        calls = []

        def factory():
            calls.append(1)
            return SortedArrayMap()

        srv = PequodServer(store_impl=factory)
        srv.put("k|a", "1")
        assert calls

    @pytest.mark.parametrize("impl", MAP_IMPLS)
    def test_client_factory_threads_store_impl(self, impl):
        from repro.store.diskmap import DiskMap

        with make_client("local", store_impl=impl) as client:
            client.put("k|a", "1")
            assert client.get("k|a") == "1"
            expected = {
                "rbtree": RBTree,
                "sortedarray": SortedArrayMap,
                "disk": DiskMap,
            }[impl]
            tree = client.server.store.tables["k"]._tree
            assert isinstance(tree, expected)


class TestEndToEndParity:
    """One deterministic Twip mini-workload; identical output state
    across both stores and both pattern paths (the bench's guarantee,
    at unit-test scale)."""

    def drive(self, store_impl, compiled) -> list:
        previous = set_pattern_compilation(compiled)
        try:
            srv = timeline_server(store_impl=store_impl)
            users = [f"u{i}" for i in range(8)]
            for i, u in enumerate(users):
                srv.put(f"s|{u}|u{(i + 1) % 8}", "1")
                srv.put(f"s|{u}|u{(i + 3) % 8}", "1")
            for t in range(40):
                srv.put(f"p|u{t % 8}|{t:04d}", f"tweet {t}")
            out = []
            for u in users:
                out.extend(srv.scan(f"t|{u}|", f"t|{u}}}"))
            for t in range(40, 50):
                srv.put(f"p|u{t % 8}|{t:04d}", f"tweet {t}")
            srv.remove("s|u0|u1")
            srv.put("s|u0|u5", "1")
            for u in users:
                out.extend(srv.scan(f"t|{u}|0020", f"t|{u}}}"))
            out.extend(srv.scan("t|", "t}"))  # cross-timeline sweep
        finally:
            set_pattern_compilation(previous)
        return out

    def test_all_configurations_agree(self):
        reference = self.drive("rbtree", compiled=False)
        assert reference  # non-trivial workload
        for impl in MAP_IMPLS:
            for compiled in (False, True):
                assert self.drive(impl, compiled) == reference, (impl, compiled)
