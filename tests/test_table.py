"""Unit tests for the table/subtable layer."""

import random

from repro.store.stats import StoreStats
from repro.store.table import SUBTABLE_OVERHEAD, Table
from repro.store.values import NODE_OVERHEAD


class TestFlatTable:
    def test_put_get_remove(self):
        tbl = Table("p")
        tbl.put("p|bob|0100", "hi")
        assert tbl.get("p|bob|0100") == "hi"
        assert tbl.remove("p|bob|0100") == "hi"
        assert tbl.get("p|bob|0100") is None
        assert tbl.remove("p|bob|0100") is None

    def test_put_returns_old_value(self):
        tbl = Table("p")
        _, old = tbl.put("k", "v1")
        assert old is None
        _, old = tbl.put("k", "v2")
        assert old == "v1"
        assert len(tbl) == 1

    def test_scan_ordering(self):
        tbl = Table("p")
        for poster, time in [("bob", 120), ("ann", 100), ("bob", 100)]:
            tbl.put(f"p|{poster}|{time:04d}", "x")
        got = [k for k, _ in tbl.scan("p|", "p}")]
        assert got == ["p|ann|0100", "p|bob|0100", "p|bob|0120"]

    def test_scan_empty_range(self):
        tbl = Table("p")
        tbl.put("p|a", "1")
        assert list(tbl.scan("p|z", "p|a")) == []

    def test_count_range(self):
        tbl = Table("p")
        for i in range(20):
            tbl.put(f"p|u|{i:03d}", str(i))
        assert tbl.count_range("p|u|005", "p|u|015") == 10

    def test_first_node(self):
        tbl = Table("p")
        tbl.put("p|b", "2")
        tbl.put("p|a", "1")
        assert tbl.first_node("p|", "p}").key == "p|a"
        assert tbl.first_node("p|c", "p}") is None


class TestMemoryAccounting:
    def test_memory_grows_and_shrinks(self):
        tbl = Table("p")
        assert tbl.memory_bytes == 0
        tbl.put("p|k", "value")
        expected = len("p|k") + NODE_OVERHEAD + len("value")
        assert tbl.memory_bytes == expected
        tbl.remove("p|k")
        assert tbl.memory_bytes == 0

    def test_overwrite_adjusts_value_bytes(self):
        tbl = Table("p")
        tbl.put("p|k", "aa")
        before = tbl.memory_bytes
        tbl.put("p|k", "aaaa")
        assert tbl.memory_bytes == before + 2

    def test_subtable_overhead_charged(self):
        tbl = Table("t", subtable_depth=2)
        tbl.put("t|ann|0100|bob", "x")
        assert tbl.memory_bytes >= SUBTABLE_OVERHEAD
        tbl.remove("t|ann|0100|bob")
        assert tbl.memory_bytes == 0  # empty subtable dropped


class TestSubtables:
    def test_subtable_created_per_prefix(self):
        tbl = Table("t", subtable_depth=2)
        tbl.put("t|ann|0100|bob", "x")
        tbl.put("t|ann|0120|liz", "y")
        tbl.put("t|bob|0100|ann", "z")
        assert tbl.subtable_count() == 2
        assert len(tbl) == 3

    def test_in_subtable_scan(self):
        tbl = Table("t", subtable_depth=2)
        tbl.put("t|ann|0100|bob", "1")
        tbl.put("t|ann|0120|liz", "2")
        tbl.put("t|bob|0050|ann", "3")
        got = [k for k, _ in tbl.scan("t|ann|", "t|ann}")]
        assert got == ["t|ann|0100|bob", "t|ann|0120|liz"]

    def test_cross_subtable_scan(self):
        tbl = Table("t", subtable_depth=2)
        pairs = [
            ("t|ann|0100|bob", "1"),
            ("t|bob|0050|ann", "2"),
            ("t|liz|0010|jim", "3"),
        ]
        for k, v in pairs:
            tbl.put(k, v)
        got = [k for k, _ in tbl.scan("t|", "t}")]
        assert got == sorted(k for k, _ in pairs)

    def test_partial_cross_subtable_scan(self):
        """Paper §3.1: queries like [t|ann|100, t|bob|200) must work."""
        tbl = Table("t", subtable_depth=2)
        for k in [
            "t|ann|0050|x",
            "t|ann|0150|x",
            "t|bob|0100|x",
            "t|bob|0250|x",
            "t|liz|0100|x",
        ]:
            tbl.put(k, "v")
        got = [k for k, _ in tbl.scan("t|ann|0100", "t|bob|0200")]
        assert got == ["t|ann|0150|x", "t|bob|0100|x"]

    def test_residual_keys_interleave_correctly(self):
        # A key with exactly `depth` segments lives in the residual tree
        # but must still appear in ordered scans at the right position.
        tbl = Table("t", subtable_depth=2)
        tbl.put("t|ann", "bare")
        tbl.put("t|ann|0100|bob", "in-sub")
        tbl.put("t|an", "bare2")
        got = [k for k, _ in tbl.scan("t|", "t}")]
        assert got == sorted(["t|ann", "t|ann|0100|bob", "t|an"])

    def test_matches_flat_table_on_random_workload(self):
        rng = random.Random(3)
        flat = Table("t")
        sub = Table("t", subtable_depth=2)
        model = {}
        users = [f"u{i:02d}" for i in range(12)]
        for step in range(1500):
            user = rng.choice(users)
            key = f"t|{user}|{rng.randrange(50):03d}"
            if rng.random() < 0.7:
                flat.put(key, str(step))
                sub.put(key, str(step))
                model[key] = str(step)
            else:
                flat.remove(key)
                sub.remove(key)
                model.pop(key, None)
        assert len(flat) == len(sub) == len(model)
        full_flat = list(flat.scan("t|", "t}"))
        full_sub = list(sub.scan("t|", "t}"))
        assert full_flat == full_sub == sorted(model.items())
        for _ in range(25):
            u1, u2 = rng.choice(users), rng.choice(users)
            lo = f"t|{u1}|{rng.randrange(50):03d}"
            hi = f"t|{u2}|{rng.randrange(50):03d}"
            assert list(flat.scan(lo, hi)) == list(sub.scan(lo, hi))


class TestHints:
    def test_hinted_append_hits(self):
        stats = StoreStats()
        tbl = Table("t", stats=stats)
        handle, _ = tbl.put("t|u|001", "a")
        handle, _ = tbl.put("t|u|002", "b", hint=handle)
        handle, _ = tbl.put("t|u|003", "c", hint=handle)
        assert stats.get("hint_hits") == 2
        assert [k for k, _ in tbl.scan("t|", "t}")] == [
            "t|u|001",
            "t|u|002",
            "t|u|003",
        ]

    def test_hinted_overwrite_same_key(self):
        stats = StoreStats()
        tbl = Table("t", stats=stats)
        handle, _ = tbl.put("t|u|001", "a")
        handle, old = tbl.put("t|u|001", "b", hint=handle)
        assert old == "a"
        assert stats.get("hint_hits") == 1
        assert len(tbl) == 1

    def test_hint_wrong_position_falls_back(self):
        tbl = Table("t")
        handle, _ = tbl.put("t|u|005", "a")
        tbl.put("t|u|001", "early", hint=handle)  # key before hint
        assert [k for k, _ in tbl.scan("t|", "t}")] == ["t|u|001", "t|u|005"]

    def test_hint_with_existing_successor_overwrites(self):
        tbl = Table("t")
        handle, _ = tbl.put("t|u|001", "a")
        tbl.put("t|u|002", "b")
        _, old = tbl.put("t|u|002", "b2", hint=handle)
        assert old == "b"
        assert len(tbl) == 2

    def test_stale_hint_after_removal(self):
        tbl = Table("t")
        handle, _ = tbl.put("t|u|001", "a")
        tbl.remove("t|u|001")
        assert not handle.is_valid()
        tbl.put("t|u|002", "b", hint=handle)  # must not crash
        assert tbl.get("t|u|002") == "b"

    def test_hint_across_subtables_rejected(self):
        tbl = Table("t", subtable_depth=2)
        handle, _ = tbl.put("t|ann|001", "a")
        tbl.put("t|bob|002", "b", hint=handle)  # different subtable
        assert [k for k, _ in tbl.scan("t|", "t}")] == [
            "t|ann|001",
            "t|bob|002",
        ]
        assert tbl.subtable_count() == 2


class TestStats:
    def test_hash_jumps_counted_with_subtables(self):
        stats = StoreStats()
        tbl = Table("t", subtable_depth=2, stats=stats)
        tbl.put("t|ann|001", "x")
        tbl.get("t|ann|001")
        assert stats.get("hash_jumps") >= 2

    def test_tree_descents_counted(self):
        stats = StoreStats()
        tbl = Table("t", stats=stats)
        tbl.put("t|a", "x")
        tbl.get("t|a")
        assert stats.get("tree_descents") == 2
        assert stats.get("puts") == 1
        assert stats.get("gets") == 1
