"""Tests for the extensions the paper proposes as future work.

* ``echeck`` — eager maintenance for check-source inserts (§3.2: "we
  would like to offer users more control over maintenance type").
* Cost-aware eviction (§2.5: "considering the expected costs of
  reloading a range").
"""

import pytest

from repro import PequodServer
from repro.core.eviction import POLICY_COST

ECHECK_TIMELINE = (
    "t|<user>|<time>|<poster> = echeck s|<user>|<poster> copy p|<poster>|<time>"
)
LAZY_TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


class TestEagerCheck:
    def test_results_match_lazy_check(self):
        eager = PequodServer()
        eager.add_join(ECHECK_TIMELINE)
        lazy = PequodServer()
        lazy.add_join(LAZY_TIMELINE)
        for srv in (eager, lazy):
            srv.put("p|bob|0100", "old tweet")
            srv.put("s|ann|bob", "1")
            srv.scan("t|ann|", "t|ann}")
            srv.put("s|ann|liz", "1")
            srv.put("p|liz|0200", "liz tweet")
        assert eager.scan("t|ann|", "t|ann}") == lazy.scan("t|ann|", "t|ann}")

    def test_subscription_insert_applies_at_write_time(self):
        srv = PequodServer()
        srv.add_join(ECHECK_TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "existing")
        srv.scan("t|ann|", "t|ann}")  # materialize; install echeck updater
        srv.put("p|liz|0050", "liz old tweet")
        srv.put("s|ann|liz", "1")  # eager: backfills immediately
        assert srv.stats.get("eager_check_inserts") >= 1
        assert srv.stats.get("partial_invalidations") == 0
        # The copy is already in the store before any read.
        assert srv.store.get("t|ann|0050|liz") == "liz old tweet"

    def test_lazy_check_defers_instead(self):
        srv = PequodServer()
        srv.add_join(LAZY_TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.put("p|liz|0050", "liz old tweet")
        srv.put("s|ann|liz", "1")
        # Lazy: nothing in the store until the next read.
        assert srv.store.get("t|ann|0050|liz") is None
        assert srv.scan("t|ann|", "t|ann}")[0][0] == "t|ann|0050|liz"

    def test_echeck_removal_invalidates(self):
        srv = PequodServer()
        srv.add_join(ECHECK_TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.remove("s|ann|bob")
        assert srv.scan("t|ann|", "t|ann}") == []
        srv.put("p|bob|0300", "after unsub")
        assert srv.scan("t|ann|", "t|ann}") == []

    def test_echeck_future_posts_flow(self):
        srv = PequodServer()
        srv.add_join(ECHECK_TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.put("s|ann|liz", "1")  # eager backfill installs p|liz updater
        srv.put("p|liz|0500", "future tweet")
        assert srv.store.get("t|ann|0500|liz") == "future tweet"

    def test_grammar_accepts_echeck(self):
        srv = PequodServer()
        joins = srv.add_join(ECHECK_TIMELINE)
        assert joins[0].sources[0].is_check
        assert joins[0].sources[0].is_eager_check

    def test_echeck_counts_toward_check_quota(self):
        from repro.core.joins import CacheJoin, JoinError

        with pytest.raises(JoinError):
            CacheJoin("o|<a>", [("echeck", "x|<a>")])  # no value source


class TestCostAwareEviction:
    def build_server(self, policy):
        """Two cold ranges with opposite byte/recompute profiles:

        * ``karma|bob`` — one tiny output computed by scanning 80
          votes: expensive to rebuild, frees almost nothing;
        * ``t|ann|…`` — a timeline of copies: recompute cost scales
          with its size, so bytes-per-cost is much higher.
        """
        srv = PequodServer(eviction_policy=policy)
        srv.add_join(LAZY_TIMELINE)
        srv.add_join("karma|<author> = count vote|<author>|<id>|<voter>")
        for i in range(80):
            srv.put(f"vote|bob|{i:03d}|v{i:03d}", "1")
        srv.get("karma|bob")  # materialize the aggregate FIRST (coldest)
        srv.put("s|ann|bob", "1")
        for t in range(6):
            srv.put(f"p|bob|{t:04d}", "tweet text " * 4)
        srv.scan("t|ann|", "t|ann}")
        return srv

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            PequodServer(eviction_policy="bogus")

    def test_cost_policy_keeps_expensive_aggregate(self):
        srv = self.build_server(POLICY_COST)
        srv.eviction.evict_one()
        # The timeline frees more bytes per recompute unit; the karma
        # range (80 source scans for ~2 bytes) survives despite being
        # colder.
        assert srv.get("karma|bob") == "80"
        assert srv.store.count("karma|", "karma}") == 1
        assert srv.store.count("t|ann|", "t|ann}") == 0

    def test_lru_policy_ignores_cost(self):
        srv = self.build_server("lru")
        srv.eviction.evict_one()
        # Plain LRU evicts the aggregate purely because it is coldest.
        assert srv.store.count("karma|", "karma}") == 0
        assert srv.store.count("t|ann|", "t|ann}") == 6

    def test_compute_cost_recorded(self):
        srv = self.build_server(POLICY_COST)
        stable = srv.engine.status["t"]
        costs = [sr.compute_cost for sr in stable.ranges()]
        assert any(c > 0 for c in costs)

    def test_cost_eviction_under_memory_limit(self):
        srv = PequodServer(eviction_policy=POLICY_COST, memory_limit=30_000)
        srv.add_join(LAZY_TIMELINE)
        for u in range(25):
            srv.put(f"s|u{u:02d}|star", "1")
        for t in range(25):
            srv.put(f"p|star|{t:04d}", "tweet " * 10)
        for u in range(25):
            srv.scan(f"t|u{u:02d}|", f"t|u{u:02d}}}")
        assert srv.memory_bytes() <= 30_000
        assert srv.eviction.evictions > 0
