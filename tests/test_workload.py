"""Tests for the Twip workload generator (§5.1)."""

from collections import Counter

from repro.apps.social_graph import generate_graph
from repro.apps.twip import PequodTwipBackend
from repro.apps.workload import (
    OP_CHECK,
    OP_LOGIN,
    OP_POST,
    OP_SUBSCRIBE,
    TwipWorkload,
    checks_and_posts_workload,
)


class TestGeneration:
    def make(self, total=2000, seed=4):
        graph = generate_graph(100, 6, seed=seed)
        return graph, TwipWorkload(graph, total, seed=seed)

    def test_deterministic(self):
        _, w1 = self.make()
        _, w2 = self.make()
        ops1 = [(o.kind, o.user, o.target) for o in w1.generate()]
        ops2 = [(o.kind, o.user, o.target) for o in w2.generate()]
        assert ops1 == ops2

    def test_mix_proportions_respected(self):
        """§5.1: roughly 5% logins, 9% subs, 85% checks, 1% posts."""
        _, workload = self.make(total=5000)
        counts = Counter(op.kind for op in workload.generate())
        total = sum(counts.values())
        assert abs(counts[OP_CHECK] / total - 0.85) < 0.03
        assert abs(counts[OP_SUBSCRIBE] / total - 0.09) < 0.02
        assert abs(counts[OP_LOGIN] / total - 0.05) < 0.02
        assert counts[OP_POST] / total < 0.03

    def test_popular_users_post_more(self):
        """Posting probability ∝ log(follower count) (§5.1)."""
        graph, workload = self.make(total=8000)
        posts = Counter(
            op.user for op in workload.generate() if op.kind == OP_POST
        )
        by_followers = sorted(graph.users, key=graph.follower_count)
        bottom = sum(posts.get(u, 0) for u in by_followers[:50])
        top = sum(posts.get(u, 0) for u in by_followers[50:])
        assert top > bottom

    def test_only_active_users_check(self):
        graph, workload = self.make()
        active = set(workload.active_users)
        for op in workload.generate():
            if op.kind in (OP_CHECK, OP_LOGIN):
                assert op.user in active

    def test_no_self_subscription(self):
        _, workload = self.make()
        for op in workload.generate():
            if op.kind == OP_SUBSCRIBE:
                assert op.user != op.target


class TestRun:
    def test_run_counts_match_ops(self):
        graph = generate_graph(40, 4, seed=6)
        workload = TwipWorkload(graph, 300, seed=6)
        backend = PequodTwipBackend()
        counts = workload.run(backend)
        assert sum(
            counts[k] for k in (OP_LOGIN, OP_CHECK, OP_SUBSCRIBE, OP_POST)
        ) == 300

    def test_incremental_checks_deliver_less_than_logins(self):
        """§5.1: incremental updates return many fewer tweets."""
        graph = generate_graph(40, 6, seed=8)
        workload = TwipWorkload(graph, 1200, seed=8)
        backend = PequodTwipBackend()
        counts = workload.run(backend)
        checks = counts[OP_CHECK] + counts[OP_LOGIN]
        if checks:
            # Deliveries per check are far below total posts because
            # checks only cover the window since last_seen.
            assert counts["tweets_delivered"] / checks < max(
                1, counts[OP_POST]
            )


class TestChecksAndPosts:
    def test_ratio_scales_with_activity(self):
        graph = generate_graph(60, 5, seed=9)
        low = checks_and_posts_workload(graph, 1, posts=50, seed=9)
        high = checks_and_posts_workload(graph, 100, posts=50, seed=9)
        low_checks = sum(1 for op in low if op.kind == OP_CHECK)
        high_checks = sum(1 for op in high if op.kind == OP_CHECK)
        assert low_checks == 50  # 1:1 at 1% active
        assert high_checks == 5000  # 100:1 at 100% active

    def test_invalid_percentage_rejected(self):
        import pytest

        graph = generate_graph(20, 3, seed=1)
        with pytest.raises(ValueError):
            checks_and_posts_workload(graph, 0, posts=10)
        with pytest.raises(ValueError):
            checks_and_posts_workload(graph, 101, posts=10)
