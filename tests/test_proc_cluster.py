"""Multi-process cluster conformance: the partitioned, replicated
deployment must be observationally identical to one local server.

The reference is ``LocalClient``; each scenario drives the same
workload through both and compares the full backend state (every
table, scanned in key order) — including after a live range
migration and after a ``kill -9`` + failover mid-workload.  The
failover scenarios also pin the replication contract: an acknowledged
base write survives the death of any single node.

Most scenarios run the cluster in-process (same code path as the
subprocess deployment, minus fork overhead); one end-to-end test
spawns real OS processes and kills one with SIGKILL.
"""

import hashlib

import pytest

from repro.apps.twip import TIMELINE_JOIN, format_time
from repro.chaos import kill_node_process
from repro.client import LocalClient
from repro.client.procs import ProcClusterClient
from repro.distrib.procs import ProcCluster

TABLES = ("p", "s", "t", "vote")
SPLITS = ("f", "m", "s")  # four slices per table
KARMA = "karma|<author> = count vote|<author>|<id>|<voter>"


def cluster(count=2, replication=2, in_process=True, joins=()):
    return ProcCluster(
        count,
        tables=TABLES + ("karma",),
        splits=SPLITS,
        replication=replication,
        in_process=in_process,
        joins=joins,
    )


def state_digest(client) -> str:
    """SHA-256 over every row of every table, in key order.  Computed
    ranges are materialized first so demand-filled backends compare
    equal to eagerly-maintained ones."""
    for user in ("ann", "liz", "mike", "zoe"):
        client.scan_prefix(f"t|{user}|")
        client.scan_prefix(f"karma|{user}")
    state = []
    for table in ("p", "s", "t", "vote", "karma"):
        state.append((table, client.scan_prefix(f"{table}|")))
    return hashlib.sha256(repr(state).encode()).hexdigest()


def twip_workload(client, phase: int) -> None:
    """A deterministic §2-style Twip slice; ``phase`` 0 then 1."""
    users = ("ann", "liz", "mike", "zoe")
    if phase == 0:
        client.add_join(TIMELINE_JOIN)
        client.add_join(KARMA)
        for user in users:
            for poster in users:
                if poster != user:
                    client.put(f"s|{user}|{poster}", "1")
        for i, poster in enumerate(users):
            client.put(f"p|{poster}|{format_time(100 + i)}", f"t{i}")
        for i, voter in enumerate(users):
            client.put(f"vote|ann|{i:04d}|{voter}", "1")
    else:
        client.put(f"p|ann|{format_time(200)}", "second wave")
        client.remove("s|zoe|ann")
        client.put(f"p|mike|{format_time(210)}", "late post")
        client.put("s|ann|ann", "1")  # self-follow edge case
        client.put("vote|mike|0000|ann", "1")
        client.remove("vote|ann|0001|liz")
    client.settle()


@pytest.fixture
def reference():
    ref = LocalClient()
    yield ref
    ref.close()


def test_state_identical_to_local(reference):
    with cluster() as pc:
        client = ProcClusterClient.for_cluster(pc)
        for phase in (0, 1):
            twip_workload(reference, phase)
            twip_workload(client, phase)
        assert state_digest(client) == state_digest(reference)
        client.close()


def test_state_identical_after_live_migration(reference):
    with cluster() as pc:
        client = ProcClusterClient.for_cluster(pc)
        twip_workload(reference, 0)
        twip_workload(client, 0)
        # Move ann's timeline slice and mike's post slice while the
        # cluster is live, then keep writing through the stale client.
        for probe in ("t|ann|", "p|mike|"):
            r = pc.map.range_for(probe)
            target = next(
                n for n in pc.live_names() if n != r.primary
            )
            pc.migrate(r.lo, r.hi, target)
        twip_workload(reference, 1)
        twip_workload(client, 1)
        assert state_digest(client) == state_digest(reference)
        client.close()


def test_state_identical_after_kill_and_failover(reference):
    with cluster(count=3, replication=2) as pc:
        client = ProcClusterClient.for_cluster(pc)
        twip_workload(reference, 0)
        twip_workload(client, 0)
        victim = kill_node_process(pc)
        pc.fail_over(victim)
        twip_workload(reference, 1)
        twip_workload(client, 1)
        assert state_digest(client) == state_digest(reference)
        client.close()


def test_no_acknowledged_write_lost_on_kill():
    with cluster(count=2, replication=2) as pc:
        client = ProcClusterClient.for_cluster(pc)
        acknowledged = {}
        for i in range(120):
            key = f"p|u{i % 8}|{format_time(i)}"
            client.put(key, f"v{i}")  # returns only after every copy
            acknowledged[key] = f"v{i}"
        victim = kill_node_process(pc)
        pc.fail_over(victim)
        for key, value in acknowledged.items():
            assert client.get(key) == value, f"lost acknowledged {key}"
        client.close()


def test_replica_killed_mid_workload_keeps_serving():
    with cluster(count=3, replication=2) as pc:
        client = ProcClusterClient.for_cluster(pc)
        client.add_join(TIMELINE_JOIN)
        client.put("s|ann|bob", "1")
        client.put(f"p|bob|{format_time(100)}", "pre")
        client.settle()
        assert len(client.scan_prefix("t|ann|")) == 1
        # Kill a node that is NOT the primary for ann's data; reads
        # and maintenance continue without a failover step.
        owner = pc.map.owner_of("p|bob|")
        victim = next(n for n in pc.live_names() if n != owner
                      and n != pc.map.owner_of("t|ann|"))
        pc.kill(victim, hard=True)
        pc.fail_over(victim)
        client.put(f"p|bob|{format_time(200)}", "post")
        client.settle()
        assert [v for _, v in client.scan_prefix("t|ann|")] == ["pre", "post"]
        client.close()


@pytest.mark.slow
def test_real_processes_end_to_end(reference):
    """Real OS processes, real TCP, real SIGKILL."""
    with cluster(count=2, replication=2, in_process=False) as pc:
        client = ProcClusterClient.for_cluster(pc)
        twip_workload(reference, 0)
        twip_workload(client, 0)
        assert state_digest(client) == state_digest(reference)
        victim = kill_node_process(pc)
        pc.fail_over(victim)
        twip_workload(reference, 1)
        twip_workload(client, 1)
        assert state_digest(client) == state_digest(reference)
        client.close()
