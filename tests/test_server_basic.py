"""End-to-end tests of PequodServer: the paper's §2.1–§2.2 semantics."""

import pytest

from repro import JoinError, PequodServer

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def make_twip_server(**kwargs):
    srv = PequodServer(**kwargs)
    srv.add_join(TIMELINE)
    return srv


class TestBasicKV:
    def test_put_get_remove(self):
        srv = PequodServer()
        srv.put("p|bob|0100", "hi")
        assert srv.get("p|bob|0100") == "hi"
        assert srv.remove("p|bob|0100")
        assert srv.get("p|bob|0100") is None
        assert not srv.remove("p|bob|0100")

    def test_non_string_value_rejected(self):
        srv = PequodServer()
        with pytest.raises(TypeError):
            srv.put("k|1", 42)

    def test_scan_base_data(self):
        srv = PequodServer()
        srv.put("p|ann|0100", "a")
        srv.put("p|bob|0100", "b")
        assert srv.scan("p|", "p}") == [("p|ann|0100", "a"), ("p|bob|0100", "b")]

    def test_scan_prefix_helper(self):
        srv = PequodServer()
        srv.put("s|ann|bob", "1")
        srv.put("s|ann|liz", "1")
        srv.put("s|bob|ann", "1")
        assert [k for k, _ in srv.scan_prefix("s|ann|")] == [
            "s|ann|bob",
            "s|ann|liz",
        ]

    def test_exists_and_count(self):
        srv = PequodServer()
        srv.put("p|a|1", "x")
        assert srv.exists("p|a|1")
        assert not srv.exists("p|a|2")
        assert srv.count("p|", "p}") == 1


class TestTimelineJoin:
    """The paper's running example (§2.1, §2.2, Figure 4)."""

    def test_demand_computation(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "hello, world!")
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "hello, world!")]

    def test_figure4_example(self):
        """Figure 4: bob follows ann, jim, liz; scan [t|bob|100, t|bob|+)."""
        srv = make_twip_server()
        for poster in ["ann", "jim", "liz"]:
            srv.put(f"s|bob|{poster}", "")
        for time, text in [
            ("0124", "hello, world!"),
            ("0177", "i'm hungry"),
            ("0245", "going to bed"),
        ]:
            srv.put(f"p|liz|{time}", text)
        got = srv.scan("t|bob|0100", "t|bob}")
        assert got == [
            ("t|bob|0124|liz", "hello, world!"),
            ("t|bob|0177|liz", "i'm hungry"),
            ("t|bob|0245|liz", "going to bed"),
        ]

    def test_eager_incremental_update(self):
        """§2.2: after a timeline is materialized, new posts flow in."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "first")
        srv.scan("t|ann|", "t|ann}")  # materialize
        srv.put("p|bob|0120", "second")
        # No recomputation should be needed; the updater already copied.
        before = srv.stats.get("recomputations")
        got = srv.scan("t|ann|", "t|ann}")
        assert ("t|ann|0120|bob", "second") in got
        assert srv.stats.get("recomputations") == before

    def test_uninteresting_posts_not_materialized(self):
        """Dynamic materialization: only requested ranges are computed."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("s|liz|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.scan("t|ann|", "t|ann}")
        # liz never checked her timeline: nothing materialized for her.
        assert srv.store.count("t|liz|", "t|liz}") == 0
        assert srv.store.count("t|ann|", "t|ann}") == 1

    def test_post_update_propagates(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "original")
        srv.scan("t|ann|", "t|ann}")
        srv.put("p|bob|0100", "edited")
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "edited")]

    def test_post_removal_propagates(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "oops")
        srv.scan("t|ann|", "t|ann}")
        srv.remove("p|bob|0100")
        assert srv.scan("t|ann|", "t|ann}") == []

    def test_multiple_followers_fanout(self):
        srv = make_twip_server()
        followers = [f"u{i:02d}" for i in range(10)]
        for u in followers:
            srv.put(f"s|{u}|star", "1")
            srv.scan(f"t|{u}|", f"t|{u}}}")  # materialize all timelines
        srv.put("p|star|0100", "fanout!")
        for u in followers:
            assert srv.scan(f"t|{u}|", f"t|{u}}}") == [
                (f"t|{u}|0100|star", "fanout!")
            ]

    def test_timeline_window_scan(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        for t in range(100, 200, 20):
            srv.put(f"p|bob|{t:04d}", str(t))
        got = srv.scan("t|ann|0120", "t|ann|0160")
        assert [k for k, _ in got] == ["t|ann|0120|bob", "t|ann|0140|bob"]

    def test_same_time_different_posters_disambiguated(self):
        """§2.1: the poster suffix disambiguates simultaneous tweets."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("s|ann|liz", "1")
        srv.put("p|bob|0100", "from bob")
        srv.put("p|liz|0100", "from liz")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [
            ("t|ann|0100|bob", "from bob"),
            ("t|ann|0100|liz", "from liz"),
        ]


class TestSubscriptionChanges:
    def test_new_subscription_backfills_lazily(self):
        """§3.2: subscription inserts are partial invalidations."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "bob tweet")
        srv.put("p|liz|0050", "old liz tweet")
        srv.scan("t|ann|", "t|ann}")
        srv.put("s|ann|liz", "1")  # logged, not applied
        assert srv.stats.get("partial_invalidations") >= 1
        got = srv.scan("t|ann|", "t|ann}")
        assert ("t|ann|0050|liz", "old liz tweet") in got
        assert ("t|ann|0100|bob", "bob tweet") in got

    def test_new_subscription_future_posts_flow(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.put("s|ann|liz", "1")
        srv.scan("t|ann|", "t|ann}")  # pending applied; updaters installed
        srv.put("p|liz|0200", "new liz tweet")
        assert ("t|ann|0200|liz", "new liz tweet") in srv.scan("t|ann|", "t|ann}")

    def test_unsubscribe_removes_tweets(self):
        """§3.2: subscription removal is a complete invalidation."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("s|ann|liz", "1")
        srv.put("p|bob|0100", "bob")
        srv.put("p|liz|0150", "liz")
        srv.scan("t|ann|", "t|ann}")
        srv.remove("s|ann|liz")
        assert srv.stats.get("complete_invalidations") >= 1
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "bob")]

    def test_stale_updater_does_not_resurrect(self):
        """After unsubscribe + recompute, old updaters must not fire."""
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.remove("s|ann|bob")
        srv.scan("t|ann|", "t|ann}")  # recompute (empty now)
        srv.put("p|bob|0300", "stale?")
        assert srv.scan("t|ann|", "t|ann}") == []

    def test_resubscribe_works(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.scan("t|ann|", "t|ann}")
        srv.remove("s|ann|bob")
        srv.scan("t|ann|", "t|ann}")
        srv.put("s|ann|bob", "1")
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "x")]
        srv.put("p|bob|0200", "y")
        assert ("t|ann|0200|bob", "y") in srv.scan("t|ann|", "t|ann}")


class TestGets:
    def test_get_of_computed_key(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "hello")
        assert srv.get("t|ann|0100|bob") == "hello"

    def test_get_of_missing_computed_key(self):
        srv = make_twip_server()
        srv.put("s|ann|bob", "1")
        assert srv.get("t|ann|0100|liz") is None

    def test_join_error_surfaces(self):
        srv = make_twip_server()
        with pytest.raises(JoinError):
            srv.add_join("s|<user>|<poster> = copy t|<user>|<x>|<poster>")
