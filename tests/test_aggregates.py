"""Tests for aggregate cache joins: count, sum, min, max (paper §2.3)."""

import pytest

from repro import PequodServer
from repro.core.operators import AggValue, UpdateOutcome


class TestAggValueUnit:
    def test_count_payload(self):
        acc = AggValue("count")
        acc.include("x")
        acc.include("y")
        assert acc.payload == "2"

    def test_sum_integer_formatting(self):
        acc = AggValue("sum")
        acc.include("2")
        acc.include("3.0")
        assert acc.payload == "5"

    def test_sum_float(self):
        acc = AggValue("sum")
        acc.include("2.5")
        assert acc.payload == "2.5"

    def test_min_numeric_comparison(self):
        acc = AggValue("min")
        acc.include("10")
        acc.include("9")  # numerically smaller, lexicographically smaller too
        acc.include("100")  # lexicographically smaller than "9", numerically not
        assert acc.payload == "9"

    def test_max_lexicographic_fallback(self):
        acc = AggValue("max")
        acc.include("apple")
        acc.include("pear")
        assert acc.payload == "pear"

    def test_exclude_to_empty(self):
        acc = AggValue("count")
        acc.include("x")
        assert acc.exclude("x") is UpdateOutcome.EMPTIED

    def test_exclude_extremum_requires_recompute(self):
        acc = AggValue("max")
        acc.include("5")
        acc.include("9")
        assert acc.exclude("9") is UpdateOutcome.RECOMPUTE

    def test_exclude_non_extremum_applies(self):
        acc = AggValue("max")
        acc.include("5")
        acc.include("9")
        assert acc.exclude("5") is UpdateOutcome.APPLIED
        assert acc.payload == "9"

    def test_replace_improves_max(self):
        acc = AggValue("max")
        acc.include("5")
        assert acc.replace("5", "7") is UpdateOutcome.APPLIED
        assert acc.payload == "7"

    def test_replace_retreats_max(self):
        acc = AggValue("max")
        acc.include("5")
        acc.include("9")
        assert acc.replace("9", "1") is UpdateOutcome.RECOMPUTE

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            AggValue("copy")


class TestCountJoin:
    """The Newp karma join: karma|author = count vote|author|id|voter."""

    def setup_method(self):
        self.srv = PequodServer()
        self.srv.add_join("karma|<author> = count vote|<author>|<id>|<voter>")

    def test_count_on_demand(self):
        self.srv.put("vote|bob|001|ann", "1")
        self.srv.put("vote|bob|001|liz", "1")
        self.srv.put("vote|bob|002|jim", "1")
        assert self.srv.get("karma|bob") == "3"

    def test_empty_group_absent(self):
        assert self.srv.get("karma|nobody") is None

    def test_incremental_increment(self):
        self.srv.put("vote|bob|001|ann", "1")
        assert self.srv.get("karma|bob") == "1"
        self.srv.put("vote|bob|001|liz", "1")
        assert self.srv.get("karma|bob") == "2"

    def test_incremental_decrement(self):
        self.srv.put("vote|bob|001|ann", "1")
        self.srv.put("vote|bob|001|liz", "1")
        assert self.srv.get("karma|bob") == "2"
        self.srv.remove("vote|bob|001|ann")
        assert self.srv.get("karma|bob") == "1"

    def test_decrement_to_zero_removes_key(self):
        self.srv.put("vote|bob|001|ann", "1")
        assert self.srv.get("karma|bob") == "1"
        self.srv.remove("vote|bob|001|ann")
        assert self.srv.get("karma|bob") is None
        assert self.srv.scan("karma|", "karma}") == []

    def test_vote_value_update_does_not_change_count(self):
        self.srv.put("vote|bob|001|ann", "1")
        assert self.srv.get("karma|bob") == "1"
        self.srv.put("vote|bob|001|ann", "2")
        assert self.srv.get("karma|bob") == "1"

    def test_independent_groups(self):
        self.srv.put("vote|bob|001|ann", "1")
        self.srv.put("vote|liz|009|ann", "1")
        self.srv.put("vote|liz|009|jim", "1")
        assert self.srv.get("karma|bob") == "1"
        assert self.srv.get("karma|liz") == "2"

    def test_scan_over_aggregate_range(self):
        self.srv.put("vote|bob|001|ann", "1")
        self.srv.put("vote|liz|009|ann", "1")
        got = self.srv.scan("karma|", "karma}")
        assert got == [("karma|bob", "1"), ("karma|liz", "1")]


class TestGroupedCount:
    """rank|author|id = count vote|author|id|voter (per-article votes)."""

    def test_rank_per_article(self):
        srv = PequodServer()
        srv.add_join("rank|<author>|<id> = count vote|<author>|<id>|<voter>")
        srv.put("vote|bob|001|ann", "1")
        srv.put("vote|bob|001|liz", "1")
        srv.put("vote|bob|002|ann", "1")
        assert srv.get("rank|bob|001") == "2"
        assert srv.get("rank|bob|002") == "1"
        got = srv.scan("rank|bob|", "rank|bob}")
        assert got == [("rank|bob|001", "2"), ("rank|bob|002", "1")]


class TestSumJoin:
    def setup_method(self):
        self.srv = PequodServer()
        self.srv.add_join("total|<u> = sum amt|<u>|<txn>")

    def test_sum_and_update(self):
        self.srv.put("amt|ann|t1", "10")
        self.srv.put("amt|ann|t2", "5")
        assert self.srv.get("total|ann") == "15"
        self.srv.put("amt|ann|t1", "20")  # value update adjusts by delta
        assert self.srv.get("total|ann") == "25"

    def test_sum_removal(self):
        self.srv.put("amt|ann|t1", "10")
        self.srv.put("amt|ann|t2", "5")
        assert self.srv.get("total|ann") == "15"
        self.srv.remove("amt|ann|t2")
        assert self.srv.get("total|ann") == "10"

    def test_sum_floats(self):
        self.srv.put("amt|ann|t1", "1.5")
        self.srv.put("amt|ann|t2", "2.25")
        assert self.srv.get("total|ann") == "3.75"

    def test_sum_to_empty_group(self):
        self.srv.put("amt|ann|t1", "10")
        assert self.srv.get("total|ann") == "10"
        self.srv.remove("amt|ann|t1")
        assert self.srv.get("total|ann") is None


class TestMinMaxJoins:
    def test_min_tracks_smallest(self):
        srv = PequodServer()
        srv.add_join("fastest|<u> = min lap|<u>|<n>")
        srv.put("lap|ann|1", "62")
        srv.put("lap|ann|2", "59")
        assert srv.get("fastest|ann") == "59"
        srv.put("lap|ann|3", "61")
        assert srv.get("fastest|ann") == "59"

    def test_max_retreat_recomputes(self):
        srv = PequodServer()
        srv.add_join("best|<u> = max score|<u>|<g>")
        srv.put("score|ann|g1", "10")
        srv.put("score|ann|g2", "40")
        assert srv.get("best|ann") == "40"
        srv.remove("score|ann|g2")
        assert srv.stats.get("group_invalidations") >= 1
        assert srv.get("best|ann") == "10"

    def test_max_update_improvement_in_place(self):
        srv = PequodServer()
        srv.add_join("best|<u> = max score|<u>|<g>")
        srv.put("score|ann|g1", "10")
        assert srv.get("best|ann") == "10"
        srv.put("score|ann|g1", "50")
        assert srv.get("best|ann") == "50"

    def test_min_retreat_via_update(self):
        srv = PequodServer()
        srv.add_join("fastest|<u> = min lap|<u>|<n>")
        srv.put("lap|ann|1", "50")
        srv.put("lap|ann|2", "60")
        assert srv.get("fastest|ann") == "50"
        srv.put("lap|ann|1", "70")  # old minimum got worse
        assert srv.get("fastest|ann") == "60"

    def test_group_isolation_on_recompute(self):
        """Recomputing one group must not disturb its neighbours."""
        srv = PequodServer()
        srv.add_join("best|<u> = max score|<u>|<g>")
        srv.put("score|ann|g1", "10")
        srv.put("score|ann|g2", "40")
        srv.put("score|bob|g1", "99")
        assert srv.scan("best|", "best}") == [
            ("best|ann", "40"), ("best|bob", "99"),
        ]
        srv.remove("score|ann|g2")
        assert srv.scan("best|", "best}") == [
            ("best|ann", "10"), ("best|bob", "99"),
        ]


class TestAggregateWithCheckSource:
    """Multi-source aggregate: count filtered through a check."""

    def test_count_with_check(self):
        srv = PequodServer()
        srv.add_join(
            "friendvotes|<u>|<aid> = "
            "check friend|<u>|<voter> count vote|<aid>|<voter>"
        )
        srv.put("friend|ann|bob", "1")
        srv.put("friend|ann|liz", "1")
        srv.put("vote|a1|bob", "1")
        srv.put("vote|a1|liz", "1")
        srv.put("vote|a1|jim", "1")  # not a friend: filtered out
        assert srv.get("friendvotes|ann|a1") == "2"
