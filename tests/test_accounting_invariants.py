"""Global invariants: memory accounting is exact, grammar roundtrips.

The memory model drives eviction decisions and two paper measurements
(§4.1's 1.17x, §4.3's 1.14x), so it must match a from-scratch recount
after any workload — including shared-value refcounts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.core.grammar import parse_join
from repro.store.store import OrderedStore
from repro.store.table import SUBTABLE_OVERHEAD
from repro.store.values import NODE_OVERHEAD, POINTER_SIZE, SharedValue


def recount_memory(server: PequodServer) -> int:
    """Recompute the store's memory footprint from scratch.

    Uses the non-counting iteration: recounting is introspection and
    must not disturb the work counters it runs alongside.
    """
    total = 0
    seen_shared = set()
    for table in server.store.tables.values():
        total += SUBTABLE_OVERHEAD * table.subtable_count()
        for node in table.iter_nodes(table.name, table.name + "\U0010ffff"):
            total += len(node.key) + NODE_OVERHEAD
            value = node.value
            if isinstance(value, str):
                total += len(value)
            elif isinstance(value, SharedValue):
                total += POINTER_SIZE
                if id(value) not in seen_shared:
                    seen_shared.add(id(value))
                    total += len(value.payload)
            else:
                total += value.memory_size()
    return total


class TestMemoryAccountingExact:
    def run_random_workload(self, seed, sharing, subtables, store_impl=None):
        rng = random.Random(seed)
        srv = PequodServer(
            subtable_config={"t": 2, "p": 2} if subtables else None,
            enable_sharing=sharing,
            store_impl=store_impl,
        )
        srv.add_join(TIMELINE_JOIN)
        srv.add_join("karma|<poster> = count s|<user>|<poster>")
        users = [f"u{i}" for i in range(6)]
        for _ in range(300):
            action = rng.random()
            u, p = rng.choice(users), rng.choice(users)
            t = f"{rng.randrange(40):04d}"
            if action < 0.3:
                srv.put(f"s|{u}|{p}", "1")
            elif action < 0.5:
                srv.put(f"p|{p}|{t}", f"tweet {t} " * rng.randrange(1, 4))
            elif action < 0.6:
                srv.remove(f"s|{u}|{p}")
            elif action < 0.7:
                srv.remove(f"p|{p}|{t}")
            elif action < 0.9:
                srv.scan(f"t|{u}|", f"t|{u}}}")
            else:
                srv.get(f"karma|{p}")
        return srv

    @pytest.mark.parametrize("store_impl", ["rbtree", "sortedarray"])
    def test_accounting_matches_recount_default(self, store_impl):
        srv = self.run_random_workload(
            1, sharing=True, subtables=True, store_impl=store_impl
        )
        assert srv.store.memory_bytes() == recount_memory(srv)

    def test_accounting_matches_recount_no_sharing(self):
        srv = self.run_random_workload(2, sharing=False, subtables=False)
        assert srv.store.memory_bytes() == recount_memory(srv)

    def test_accounting_after_eviction(self):
        srv = self.run_random_workload(3, sharing=True, subtables=True)
        while srv.eviction.evict_one():
            pass
        assert srv.store.memory_bytes() == recount_memory(srv)

    def test_accounting_never_negative(self):
        srv = self.run_random_workload(4, sharing=True, subtables=True)
        for table in srv.store.tables.values():
            assert table.memory_bytes >= 0
        # Remove absolutely everything; accounting must return to the
        # bookkeeping-only baseline.
        for key in [n.key for n in srv.store.scan_nodes("", "\U0010ffff")]:
            srv.store.remove(key)
        assert srv.store.memory_bytes() == recount_memory(srv)
        assert len(srv.store) == 0


def recount_updater_bytes(server: PequodServer) -> int:
    """Recompute the engine's updater accounting from the interval
    trees themselves."""
    total = 0
    for table in server.store.tables.values():
        for entry in table.updaters.entries():
            for updater in entry.payloads:
                total += updater.memory_size()
    return total


class TestUpdaterAccounting:
    def test_memory_size_counts_all_four_bounds(self):
        """Source *and* output bounds are real per-updater strings; the
        old model billed only the context and undercounted."""
        from repro.core.grammar import parse_join
        from repro.core.updaters import Updater

        join = parse_join(TIMELINE_JOIN)
        updater = Updater(
            join, 1, {"user": "ann"}, "t|ann|", "t|ann}",
            False, "p|bob|", "p|bob}",
        )
        expected = (
            48
            + len("user") + len("ann")
            + len("p|bob|") + len("p|bob}")
            + len("t|ann|") + len("t|ann}")
        )
        assert updater.memory_size() == expected

    def test_engine_updater_bytes_matches_recount(self):
        srv = TestMemoryAccountingExact().run_random_workload(
            5, sharing=True, subtables=True
        )
        assert srv.engine.updater_bytes == recount_updater_bytes(srv)
        assert srv.engine.updater_bytes > 0

    def test_updater_bytes_match_after_invalidation_gc(self):
        srv = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2})
        srv.add_join(TIMELINE_JOIN)
        for u in ("ann", "bob"):
            srv.put(f"s|{u}|celeb", "1")
            srv.scan(f"t|{u}|", f"t|{u}}}")
        srv.remove("s|ann|celeb")  # invalidates; later fires GC updaters
        srv.put("p|celeb|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        assert srv.engine.updater_bytes == recount_updater_bytes(srv)


class TestCounterInvariants:
    """Work counters bill exactly the work clients cause.

    The pre-overhaul ``count()`` re-walked ``scan_nodes``, charging a
    second scan (plus descents) for an operation that moves no data;
    eviction scoring and memory recounts did the same.  Those paths now
    use the non-counting iteration, and these tests pin the invariants.
    """

    IMPLS = ["rbtree", "sortedarray"]

    def build_store(self, store_impl) -> OrderedStore:
        store = OrderedStore({"p": 2}, map_impl=store_impl)
        for i in range(60):
            store.put(f"p|u{i % 4}|{i:04d}", f"v{i}")
        return store

    @pytest.mark.parametrize("store_impl", IMPLS)
    def test_count_charges_no_scan_counters(self, store_impl):
        store = self.build_store(store_impl)
        before = store.stats.snapshot()
        assert store.count("p|", "p}") == 60
        assert store.count("p|u1|", "p|u1}") == 15
        after = store.stats.snapshot()
        for counter in ("scans", "scanned_items", "tree_descents",
                        "tree_descent_cost", "hash_jumps"):
            assert after.get(counter, 0) == before.get(counter, 0), counter

    @pytest.mark.parametrize("store_impl", IMPLS)
    def test_iter_nodes_charges_nothing(self, store_impl):
        store = self.build_store(store_impl)
        before = store.stats.snapshot()
        assert sum(1 for _ in store.iter_nodes("p|", "p}")) == 60
        tbl = store.tables["p"]
        assert sum(1 for _ in tbl.iter_nodes("p|u2|", "p|u2}")) == 15
        assert tbl.count_range("p|", "p}") == 60
        assert store.stats.snapshot() == before

    @pytest.mark.parametrize("store_impl", IMPLS)
    def test_scan_bills_each_item_exactly_once(self, store_impl):
        store = self.build_store(store_impl)
        before = store.stats.get("scanned_items")
        scans_before = store.stats.get("scans")
        out = store.scan("p|u1|", "p|u1}")
        assert len(out) == 15
        assert store.stats.get("scanned_items") == before + len(out)
        assert store.stats.get("scans") == scans_before + 1
        # A count over the same range afterwards adds nothing.
        store.count("p|u1|", "p|u1}")
        assert store.stats.get("scanned_items") == before + len(out)
        assert store.stats.get("scans") == scans_before + 1

    @pytest.mark.parametrize("store_impl", IMPLS)
    def test_legacy_and_batched_scan_bill_identically(self, store_impl):
        fast = self.build_store(store_impl)
        legacy = self.build_store(store_impl)
        legacy.legacy_read_path = True
        assert fast.scan("p|", "p}") == legacy.scan("p|", "p}")
        assert fast.stats.snapshot() == legacy.stats.snapshot()

    def test_eviction_scoring_charges_no_scans(self):
        srv = PequodServer(
            subtable_config={"t": 2}, memory_limit=10**9,
            eviction_policy="cost",
        )
        srv.add_join(TIMELINE_JOIN)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "x")
        srv.scan("t|ann|", "t|ann}")
        entry = srv.engine.lru.coldest()
        before = srv.stats.snapshot()
        # Scoring walks candidate ranges; the walk must be free.
        # (Eviction itself still bills its range-clearing read.)
        assert srv.eviction._score(entry.payload) > 0
        assert srv.stats.snapshot() == before


class TestGrammarRoundtrip:
    ops = st.sampled_from(["copy", "count", "sum", "min", "max"])
    tables = st.sampled_from(["alpha", "beta", "gamma", "delta"])
    slots = st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=3,
        unique=True,
    )

    @settings(max_examples=80)
    @given(ops, tables, tables, tables, slots)
    def test_generated_joins_roundtrip(self, op, out_tbl, chk_tbl, val_tbl, names):
        if len({out_tbl, chk_tbl, val_tbl}) < 3:
            return  # recursion rules need distinct tables
        slot_text = "|".join(f"<{n}>" for n in names)
        text = (
            f"{out_tbl}|{slot_text} = "
            f"check {chk_tbl}|{slot_text} {op} {val_tbl}|{slot_text}"
        )
        join = parse_join(text)
        again = parse_join(join.text)
        assert again.text == join.text
        assert [s.operator for s in again.sources] == ["check", op]
