"""Unit tests for slot constraints and containing ranges (paper §3.1).

The whole module runs twice: once with compiled patterns (where
containing-range computation goes through the per-pattern LRU memo)
and once against the reference walkers, so the memoized and direct
paths cannot diverge.
"""

import pytest

from repro.core.pattern import Pattern, set_pattern_compilation
from repro.core.ranges import SlotConstraints
from repro.store.keys import key_successor, prefix_upper_bound


@pytest.fixture(params=["compiled", "reference"], autouse=True)
def pattern_mode(request):
    previous = set_pattern_compilation(request.param == "compiled")
    yield request.param
    set_pattern_compilation(previous)

TIMELINE = Pattern("t|<user>|<time>|<poster>")
SUBS = Pattern("s|<user>|<poster>")
POSTS = Pattern("p|<poster>|<time>")


class TestDerivation:
    def test_full_timeline_scan(self):
        """scan(t|ann|, t|ann}) pins user exactly (paper §3.1)."""
        cs = SlotConstraints.for_output_range(TIMELINE, "t|ann|", "t|ann}")
        assert cs.compatible
        assert cs.exact == {"user": "ann"}

    def test_bounded_timeline_scan_gets_time_lower_bound(self):
        """scan(t|ann|0100, t|ann}) also bounds time from below."""
        cs = SlotConstraints.for_output_range(TIMELINE, "t|ann|0100", "t|ann}")
        assert cs.exact == {"user": "ann"}
        assert cs.bounds["time"] == ("0100", None)

    def test_get_style_range_is_fully_exact(self):
        key = "t|ann|0100|bob"
        cs = SlotConstraints.for_output_range(TIMELINE, key, key_successor(key))
        assert cs.exact == {"user": "ann", "time": "0100", "poster": "bob"}

    def test_cross_timeline_scan_bounds_user(self):
        """Paper: queries like [t|ann|100, t|bob|200) must work."""
        cs = SlotConstraints.for_output_range(
            TIMELINE, "t|ann|0100", "t|bob|0200"
        )
        assert cs.compatible
        assert "user" not in cs.exact
        lo, hi = cs.bounds["user"]
        assert lo == "ann"
        assert hi is not None and "bob" < hi  # bob inclusive-ish

    def test_whole_table_scan_unconstrained(self):
        cs = SlotConstraints.for_output_range(TIMELINE, "t|", "t}")
        assert cs.exact == {}

    def test_literal_mismatch_marks_incompatible(self):
        page_a = Pattern("page|<author>|<id>|a")
        cs = SlotConstraints.for_output_range(
            page_a, "page|bob|101|c|", "page|bob|101|c}"
        )
        assert not cs.compatible

    def test_literal_match_stays_compatible(self):
        page_c = Pattern("page|<author>|<id>|c|<cid>|<commenter>")
        cs = SlotConstraints.for_output_range(
            page_c, "page|bob|101|c|", "page|bob|101|c}"
        )
        assert cs.compatible
        assert cs.exact == {"author": "bob", "id": "101"}

    def test_literal_within_frontier_bounds_compatible(self):
        page_c = Pattern("page|<author>|<id>|c|<cid>|<commenter>")
        cs = SlotConstraints.for_output_range(
            page_c, "page|bob|101|a", "page|bob|101|r"
        )
        assert cs.compatible

    def test_literal_outside_frontier_bounds_incompatible(self):
        page_r = Pattern("page|<author>|<id>|r")
        cs = SlotConstraints.for_output_range(
            page_r, "page|bob|101|a", "page|bob|101|c"
        )
        assert not cs.compatible


class TestChildWith:
    def test_merge_consistent(self):
        cs = SlotConstraints(exact={"user": "ann"})
        child = cs.child_with({"poster": "bob"})
        assert child.exact == {"user": "ann", "poster": "bob"}

    def test_conflict_returns_none(self):
        cs = SlotConstraints(exact={"user": "ann"})
        assert cs.child_with({"user": "liz"}) is None

    def test_bound_violation_returns_none(self):
        cs = SlotConstraints(bounds={"time": ("0100", None)})
        assert cs.child_with({"time": "0050"}) is None

    def test_bound_satisfied_promotes_to_exact(self):
        cs = SlotConstraints(bounds={"time": ("0100", "0200")})
        child = cs.child_with({"time": "0150"})
        assert child.exact["time"] == "0150"
        assert "time" not in child.bounds

    def test_upper_bound_violation(self):
        cs = SlotConstraints(bounds={"time": (None, "0200")})
        assert cs.child_with({"time": "0200"}) is None
        assert cs.child_with({"time": "0250"}) is None

    def test_parent_unchanged(self):
        cs = SlotConstraints(exact={"a": "1"})
        cs.child_with({"b": "2"})
        assert cs.exact == {"a": "1"}


class TestContainingRanges:
    def test_paper_subscription_range(self):
        """Given user=ann, the s source range is [s|ann|, s|ann})."""
        cs = SlotConstraints(exact={"user": "ann"})
        assert cs.containing_range(SUBS) == ("s|ann|", "s|ann}")

    def test_paper_post_range_with_time_bound(self):
        """Given user=ann, poster=bob, time>=0100: [p|bob|0100, p|bob})."""
        cs = SlotConstraints(
            exact={"user": "ann", "poster": "bob"},
            bounds={"time": ("0100", None)},
        )
        assert cs.containing_range(POSTS) == ("p|bob|0100", "p|bob}")

    def test_fully_exact_range_is_single_key(self):
        cs = SlotConstraints(exact={"user": "ann", "poster": "bob"})
        lo, hi = cs.containing_range(SUBS)
        assert lo == "s|ann|bob"
        assert hi == key_successor(lo)

    def test_unconstrained_source_scans_whole_table(self):
        cs = SlotConstraints()
        lo, hi = cs.containing_range(POSTS)
        assert lo == "p|"
        assert hi == prefix_upper_bound("p|")

    def test_celebrity_time_bound(self):
        """Paper §2.3: ct range bounded by the scan's time window."""
        ct = Pattern("ct|<time>|<poster>")
        cs = SlotConstraints(
            exact={"user": "ann"}, bounds={"time": ("0100", None)}
        )
        assert cs.containing_range(ct) == ("ct|0100", "ct}")

    def test_bounded_slot_with_upper(self):
        cs = SlotConstraints(bounds={"poster": ("a", "c")})
        lo, hi = cs.containing_range(POSTS)
        assert lo == "p|a"
        assert hi == "p|c"


class TestSoundness:
    """Containing ranges must contain every relevant source key."""

    def test_every_matching_source_key_is_in_range(self):
        import itertools

        users = ["ann", "bob"]
        posters = ["bob", "liz", "zed"]
        times = ["0050", "0100", "0150"]
        scan_ranges = [
            ("t|ann|", "t|ann}"),
            ("t|ann|0100", "t|ann}"),
            ("t|ann|0100", "t|bob|0150"),
            ("t|a", "t|c"),
            ("t|", "t}"),
        ]
        for first, last in scan_ranges:
            cs = SlotConstraints.for_output_range(TIMELINE, first, last)
            if not cs.compatible:
                continue
            for user, poster, time in itertools.product(users, posters, times):
                out_key = f"t|{user}|{time}|{poster}"
                if not (first <= out_key < last):
                    continue
                # The s key for this tuple must be inside s's range.
                s_lo, s_hi = cs.containing_range(SUBS)
                s_key = f"s|{user}|{poster}"
                assert s_lo <= s_key < s_hi, (first, last, s_key)
                # After binding s's slots, p's range must contain p key.
                child = cs.child_with({"user": user, "poster": poster})
                assert child is not None
                p_lo, p_hi = child.containing_range(POSTS)
                p_key = f"p|{poster}|{time}"
                assert p_lo <= p_key < p_hi, (first, last, p_key)
