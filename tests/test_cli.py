"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


class TestDemoCommand:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "ann's timeline" in out
        assert "t|ann|0100|bob" in out

    @pytest.mark.parametrize("backend", ["rpc", "cluster"])
    def test_demo_on_other_backends(self, backend, capsys):
        assert main(["demo", "--backend", backend]) == 0
        out = capsys.readouterr().out
        assert f"backend: {backend}" in out
        assert "t|ann|0100|bob" in out


class TestBenchCommand:
    @pytest.mark.slow
    def test_fig7_small_scale(self, capsys):
        assert main(["bench", "fig7", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "pequod" in out and "postgresql" in out

    @pytest.mark.slow
    def test_fig9_small_scale(self, capsys):
        assert main(["bench", "fig9", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "interleaved" in out

    def test_write_batching_with_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_write_batching.json"
        assert main(
            ["bench", "write_batching", "--scale", "0.05",
             "--json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Write batching" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "write_batching"
        assert payload["state_identical"] is True
        assert [p["batch_size"] for p in payload["points"]] == [1, 8, 32, 128]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_twip_backend_matrix(self, tmp_path, capsys):
        """The acceptance run: one workload on all three backends via
        the unified client, with identical output state."""
        out_path = tmp_path / "BENCH_twip.json"
        assert main(
            ["bench", "twip", "--scale", "0.25", "--backend", "all",
             "--json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "unified PequodClient" in out
        assert "identical across backends: True" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["state_identical"] is True
        assert set(payload["backends"]) == {"local", "rpc", "cluster"}
        digests = {
            r["state_sha256"] for r in payload["backends"].values()
        }
        assert len(digests) == 1

    @pytest.mark.parametrize("backend", ["local", "rpc", "cluster"])
    def test_twip_single_backend(self, backend, capsys):
        assert main(
            ["bench", "twip", "--scale", "0.2", "--backend", backend]
        ) == 0
        assert backend in capsys.readouterr().out


class TestJoinsCommand:
    def test_valid_file(self, tmp_path, capsys):
        path = tmp_path / "joins.pql"
        path.write_text(
            "// Twip\n"
            "t|<u>|<tm>|<p> = check s|<u>|<p> copy p|<p>|<tm>;\n"
            "karma|<a> = count vote|<a>|<id>|<v>\n"
        )
        assert main(["joins", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok:") == 2

    def test_invalid_join_rejected(self, tmp_path, capsys):
        path = tmp_path / "bad.pql"
        path.write_text("t|<a> = copy t|<a>")  # recursive
        assert main(["joins", str(path)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_circular_joins_rejected(self, tmp_path, capsys):
        path = tmp_path / "cycle.pql"
        path.write_text("b|<x> = copy a|<x>; a|<x> = copy b|<x>")
        assert main(["joins", str(path)]) == 1
        assert "rejected" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["joins", "/nonexistent/path.pql"]) == 1


class TestServeCommand:
    def test_bad_subtable_spec(self, capsys):
        assert main(["serve", "--subtable", "nonsense"]) == 2

    def test_serve_over_subprocess(self, tmp_path):
        """Start a real server process, drive it over TCP, kill it."""
        joins = tmp_path / "twip.pql"
        joins.write_text(
            "t|<u>|<tm>|<p> = check s|<u>|<p> copy p|<p>|<tm>\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--join-file", str(joins), "--subtable", "t:2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            # Parse the bound port from the startup banner.
            installed = proc.stdout.readline()
            assert "installed:" in installed
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.rsplit(":", 1)[1])

            from repro.net.rpc_client import SyncRpcClient

            client = SyncRpcClient("127.0.0.1", port)
            try:
                client.put("s|ann|bob", "1")
                client.put("p|bob|0100", "over the wire")
                assert client.scan("t|ann|", "t|ann}") == [
                    ("t|ann|0100|bob", "over the wire")
                ]
            finally:
                client.close()
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestWatchCommand:
    @pytest.mark.parametrize("backend", ["local", "rpc", "cluster"])
    def test_watch_feed_renders_pushed_updates(self, backend, capsys):
        assert main(
            ["watch", "t|", "t}", "--backend", backend, "--feed",
             "--count", "3", "--timeout", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "watching" in out and "server push" in out
        assert out.count("insert") == 3
        assert "t|ann|0100|bob" in out and "hello, world!" in out
        assert "3 event(s)" in out

    def test_watch_timeout_without_events(self, capsys):
        assert main(
            ["watch", "q|", "q}", "--backend", "local",
             "--timeout", "0.05"]
        ) == 0
        assert "0 event(s)" in capsys.readouterr().out

    def test_host_rejected_off_rpc(self, capsys):
        assert main(
            ["watch", "t|", "t}", "--backend", "local",
             "--host", "127.0.0.1"]
        ) == 2

    def test_watch_against_live_serve(self, tmp_path):
        """The deployment story: `repro watch` streaming from a
        separate `repro serve` process over real TCP."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.rsplit(":", 1)[1])

            from repro.net.rpc_client import SyncRpcClient

            watcher = subprocess.Popen(
                [sys.executable, "-u", "-m", "repro", "watch", "p|", "p}",
                 "--host", "127.0.0.1", "--port", str(port),
                 "--count", "3", "--timeout", "10"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            )
            try:
                # The banner prints only after the subscription is
                # installed server-side; writes after it are pushed.
                banner = watcher.stdout.readline()
                assert "watching" in banner
                client = SyncRpcClient("127.0.0.1", port)
                try:
                    for i in range(3):
                        client.put(f"p|bob|{i:04d}", f"live {i}")
                finally:
                    client.close()
                out, _ = watcher.communicate(timeout=30)
            except BaseException:
                watcher.kill()
                raise
            assert watcher.returncode == 0, out
            assert out.count("insert") == 3
            assert "live 2" in out
        finally:
            proc.terminate()
            proc.wait(timeout=10)


class TestBenchConcurrency:
    @pytest.mark.slow
    def test_concurrency_with_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_concurrency.json"
        assert main(
            ["bench", "concurrency", "--scale", "0.2",
             "--json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Pipelined RPCs outstanding" in out
        assert "sync baseline" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["experiment"] == "concurrency"
        assert [p["depth"] for p in payload["points"]] == [1, 4, 8, 32]
        assert payload["baseline"]["ops_per_sec"] > 0
        assert payload["max_speedup"] >= 1.0
