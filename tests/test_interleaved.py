"""Tests for interleaved cache joins and join layering (paper §2.3, Fig 1)."""

import pytest

from repro import JoinError, PequodServer

NEWP_JOINS = """
karma|<author> = count vote|<author>|<id>|<voter>;
rank|<author>|<id> = count vote|<author>|<id>|<voter>;
page|<author>|<id>|a = copy article|<author>|<id>;
page|<author>|<id>|r = copy rank|<author>|<id>;
page|<author>|<id>|c|<cid>|<commenter> =
    copy comment|<author>|<id>|<cid>|<commenter>;
page|<author>|<id>|k|<cid>|<commenter> =
    check comment|<author>|<id>|<cid>|<commenter>
    copy karma|<commenter>
"""


def make_newp():
    srv = PequodServer()
    srv.add_join(NEWP_JOINS)
    return srv


class TestNewpInterleaved:
    def test_single_scan_renders_article(self):
        """§2.3: one scan retrieves all data needed to render a page."""
        srv = make_newp()
        srv.put("article|bob|101", "A great article")
        srv.put("comment|bob|101|c1|liz", "nice!")
        srv.put("comment|bob|101|c2|jim", "meh")
        srv.put("vote|bob|101|ann", "1")
        srv.put("vote|bob|101|liz", "1")
        # liz has karma from votes on her own article
        srv.put("vote|liz|200|ann", "1")
        got = srv.scan("page|bob|101|", "page|bob|101}")
        assert got == [
            ("page|bob|101|a", "A great article"),
            ("page|bob|101|c|c1|liz", "nice!"),
            ("page|bob|101|c|c2|jim", "meh"),
            ("page|bob|101|k|c1|liz", "1"),
            ("page|bob|101|r", "2"),
        ]

    def test_vote_updates_interleaved_rank(self):
        srv = make_newp()
        srv.put("article|bob|101", "art")
        srv.scan("page|bob|101|", "page|bob|101}")
        srv.put("vote|bob|101|ann", "1")
        got = dict(srv.scan("page|bob|101|", "page|bob|101}"))
        assert got["page|bob|101|r"] == "1"
        srv.put("vote|bob|101|liz", "1")
        got = dict(srv.scan("page|bob|101|", "page|bob|101}"))
        assert got["page|bob|101|r"] == "2"

    def test_karma_update_cascades_to_page(self):
        """Layered joins: vote -> karma -> page|..|k copy (two hops)."""
        srv = make_newp()
        srv.put("article|bob|101", "art")
        srv.put("comment|bob|101|c1|liz", "hi")
        srv.scan("page|bob|101|", "page|bob|101}")
        # New vote on liz's article raises her karma, which must
        # propagate through the karma table into the page range.
        srv.put("vote|liz|300|ann", "1")
        got = dict(srv.scan("page|bob|101|", "page|bob|101}"))
        assert got["page|bob|101|k|c1|liz"] == "1"
        srv.put("vote|liz|300|jim", "1")
        got = dict(srv.scan("page|bob|101|", "page|bob|101}"))
        assert got["page|bob|101|k|c1|liz"] == "2"

    def test_new_comment_appears_with_karma(self):
        srv = make_newp()
        srv.put("article|bob|101", "art")
        srv.put("vote|jim|1|x", "1")  # jim has karma 1
        srv.scan("page|bob|101|", "page|bob|101}")
        srv.put("comment|bob|101|c9|jim", "late comment")
        got = dict(srv.scan("page|bob|101|", "page|bob|101}"))
        assert got["page|bob|101|c|c9|jim"] == "late comment"
        assert got["page|bob|101|k|c9|jim"] == "1"

    def test_tag_scan_selects_one_class(self):
        """Scanning just the |c| tag returns only comments."""
        srv = make_newp()
        srv.put("article|bob|101", "art")
        srv.put("comment|bob|101|c1|liz", "first")
        srv.put("vote|bob|101|ann", "1")
        got = srv.scan("page|bob|101|c|", "page|bob|101|c}")
        assert got == [("page|bob|101|c|c1|liz", "first")]

    def test_separate_pages_independent(self):
        srv = make_newp()
        srv.put("article|bob|101", "one")
        srv.put("article|bob|102", "two")
        page1 = srv.scan("page|bob|101|", "page|bob|101}")
        page2 = srv.scan("page|bob|102|", "page|bob|102}")
        assert dict(page1)["page|bob|101|a"] == "one"
        assert dict(page2)["page|bob|102|a"] == "two"


class TestJoinLayering:
    def test_permutation_join(self):
        """§3: joins can permute keys into a more convenient order."""
        srv = PequodServer()
        srv.add_join("bytime|<time>|<poster> = copy p|<poster>|<time>")
        srv.put("p|bob|0200", "later")
        srv.put("p|ann|0100", "earlier")
        got = srv.scan("bytime|", "bytime}")
        assert got == [
            ("bytime|0100|ann", "earlier"),
            ("bytime|0200|bob", "later"),
        ]

    def test_chain_of_joins_cascades(self):
        srv = PequodServer()
        srv.add_join("mid|<a> = copy base|<a>")
        srv.add_join("top|<a> = copy mid|<a>")
        srv.put("base|x", "v1")
        assert srv.scan("top|", "top}") == [("top|x", "v1")]
        srv.put("base|x", "v2")
        assert srv.scan("top|", "top}") == [("top|x", "v2")]

    def test_circular_chain_rejected(self):
        srv = PequodServer()
        srv.add_join("b|<x> = copy a|<x>")
        srv.add_join("c|<x> = copy b|<x>")
        with pytest.raises(JoinError):
            srv.add_join("a|<x> = copy c|<x>")

    def test_pull_join_as_source_rejected(self):
        srv = PequodServer()
        srv.add_join("mid|<a> = pull copy base|<a>")
        with pytest.raises(JoinError):
            srv.add_join("top|<a> = copy mid|<a>")

    def test_pull_join_into_sourced_table_rejected(self):
        srv = PequodServer()
        srv.add_join("top|<a> = copy mid|<a>")
        with pytest.raises(JoinError):
            srv.add_join("mid|<a> = pull copy base|<a>")

    def test_multiple_joins_same_output_table_different_tags(self):
        srv = PequodServer()
        srv.add_join("o|<u>|x = copy a|<u>")
        srv.add_join("o|<u>|y = copy b|<u>")
        srv.put("a|ann", "1")
        srv.put("b|ann", "2")
        assert srv.scan("o|ann|", "o|ann}") == [("o|ann|x", "1"), ("o|ann|y", "2")]
