"""Integration tests: Pequod served over real asyncio TCP RPC (§5.1)."""

import asyncio

import pytest

from repro import PequodServer
from repro.net.rpc_client import RpcClient, RpcError
from repro.net.rpc_server import RpcServer

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


async def with_server(fn):
    server = RpcServer(PequodServer())
    await server.start()
    client = RpcClient("127.0.0.1", server.port)
    await client.connect()
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.stop()


class TestRpcBasics:
    def test_ping(self):
        async def body(server, client):
            assert await client.ping() == "pong"

        run(with_server(body))

    def test_put_get_remove(self):
        async def body(server, client):
            await client.put("p|bob|0100", "hello")
            assert await client.get("p|bob|0100") == "hello"
            assert await client.remove("p|bob|0100") is True
            assert await client.get("p|bob|0100") is None

        run(with_server(body))

    def test_scan(self):
        async def body(server, client):
            await client.put("p|a|1", "x")
            await client.put("p|b|1", "y")
            rows = await client.scan("p|", "p}")
            assert rows == [("p|a|1", "x"), ("p|b|1", "y")]

        run(with_server(body))

    def test_join_over_rpc(self):
        async def body(server, client):
            installed = await client.add_join(TIMELINE)
            assert len(installed) == 1
            await client.put("s|ann|bob", "1")
            await client.put("p|bob|0100", "tweet")
            rows = await client.scan("t|ann|", "t|ann}")
            assert rows == [("t|ann|0100|bob", "tweet")]

        run(with_server(body))

    def test_error_propagates_as_rpc_error(self):
        async def body(server, client):
            with pytest.raises(RpcError):
                await client.call("add_join", "not a join at all")
            with pytest.raises(RpcError):
                await client.call("no_such_method")
            # The connection remains usable after errors.
            assert await client.ping() == "pong"

        run(with_server(body))

    def test_stats_over_rpc(self):
        async def body(server, client):
            await client.put("p|a|1", "x")
            stats = await client.call("stats")
            assert stats["op_put"] == 1

        run(with_server(body))


class TestPipelining:
    def test_many_outstanding_requests(self):
        """§5.1: clients keep many RPCs outstanding."""

        async def body(server, client):
            calls = [("put", [f"p|u|{i:04d}", f"v{i}"]) for i in range(200)]
            await client.call_many(calls)
            rows = await client.scan("p|u|", "p|u}")
            assert len(rows) == 200
            assert server.requests_served >= 201

        run(with_server(body))

    def test_interleaved_reads_and_writes(self):
        async def body(server, client):
            results = await client.call_many(
                [
                    ("put", ["p|x|1", "a"]),
                    ("get", ["p|x|1"]),
                    ("put", ["p|x|2", "b"]),
                    ("scan", ["p|x|", "p|x}"]),
                ]
            )
            assert results[1] == "a"
            assert [tuple(r) for r in results[3]] == [
                ("p|x|1", "a"),
                ("p|x|2", "b"),
            ]

        run(with_server(body))

    def test_multiple_clients(self):
        async def body(server, client):
            other = RpcClient("127.0.0.1", server.port)
            await other.connect()
            try:
                await client.put("p|shared|1", "from-first")
                assert await other.get("p|shared|1") == "from-first"
            finally:
                await other.close()
            assert server.connections == 2

        run(with_server(body))


class TestDisconnectTeardown:
    """Watch-subscription cleanup when a client vanishes.

    Regression: a handle whose ``close()`` faults during disconnect
    teardown must be *logged* — not swallowed — and must not stop the
    remaining subscriptions from being dropped (ghost watchers would
    keep pushing into a dead writer)."""

    class _FaultyHandle:
        """Stands in for a WatchHandle whose close() blows up."""

        def __init__(self, inner):
            self.inner = inner

        def close(self):
            raise RuntimeError("injected close fault")

    def test_faulting_close_is_logged_and_others_still_drop(self, caplog):
        import logging

        async def body(server, client):
            await client.subscribe("p|", "p}")
            await client.subscribe("q|", "q}")
            hub = server.server.hub
            assert hub.watcher_count() == 2
            conn = next(iter(server._live_connections))
            first_id = min(conn.subscriptions)
            real = conn.subscriptions[first_id]
            conn.subscriptions[first_id] = self._FaultyHandle(real)
            with caplog.at_level(logging.ERROR, logger="repro.net.rpc_server"):
                await client.close()
                # Let the server observe EOF and run connection teardown.
                for _ in range(50):
                    await asyncio.sleep(0.01)
                    if not server._live_connections:
                        break
            assert not server._live_connections
            # The fault was logged with its traceback, not swallowed.
            assert "disconnect teardown" in caplog.text
            assert "injected close fault" in caplog.text
            # ... and the *other* subscription still got dropped.
            assert hub.watcher_count() == 1
            real.close()  # release the wrapped one; teardown couldn't
            assert hub.watcher_count() == 0

        async def scenario():
            server = RpcServer(PequodServer())
            await server.start()
            client = RpcClient("127.0.0.1", server.port)
            await client.connect()
            try:
                await body(server, client)
            finally:
                await server.stop()

        run(scenario())
