"""Property-based tests (hypothesis) for core data structures and the
join engine's central invariant.

The headline property: after ANY sequence of base-data writes, removes,
and interleaved reads, a cache join's output equals the brute-force
relational join of the current base data — incremental maintenance is
indistinguishable from recomputation (§3.2's correctness contract).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PequodServer
from repro.core.pattern import Pattern
from repro.net.codec import decode, encode
from repro.store.interval_tree import IntervalTree
from repro.store.rbtree import RBTree
from repro.store.table import Table

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
keys = st.text(
    alphabet=st.sampled_from("abc|0123"), min_size=1, max_size=8
).filter(lambda s: not s.startswith("|"))

users = st.sampled_from(["ann", "bob", "liz", "jim", "kay"])
times = st.integers(min_value=0, max_value=30).map(lambda t: f"{t:04d}")


class TestRBTreeProperties:
    @given(st.lists(st.tuples(keys, st.integers()), max_size=80))
    def test_matches_dict_model(self, pairs):
        tree = RBTree()
        model = {}
        for key, value in pairs:
            tree.insert(key, value)
            model[key] = value
        assert sorted(model.items()) == list(tree.items())
        tree.check_invariants()

    @given(
        st.lists(st.tuples(st.booleans(), keys), max_size=100),
    )
    def test_insert_remove_interleaved(self, ops):
        tree = RBTree()
        model = {}
        for is_insert, key in ops:
            if is_insert:
                tree.insert(key, key)
                model[key] = key
            else:
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
        assert list(tree.keys()) == sorted(model)
        tree.check_invariants()

    @given(st.lists(keys, min_size=1, max_size=50), keys, keys)
    def test_range_queries_match_model(self, inserted, lo, hi):
        tree = RBTree()
        for key in inserted:
            tree.insert(key, None)
        expected = sorted({k for k in inserted if lo <= k < hi})
        assert list(tree.keys(lo, hi)) == expected


class TestIntervalTreeProperties:
    @given(
        st.lists(
            st.tuples(times, times, st.integers(0, 99)), max_size=50
        ),
        times,
    )
    def test_stab_matches_bruteforce(self, intervals, point):
        tree = IntervalTree()
        live = []
        for lo, hi, payload in intervals:
            if lo < hi:
                tree.add(lo, hi, payload)
                live.append((lo, hi, payload))
        expected = sorted(p for lo, hi, p in live if lo <= point < hi)
        got = sorted(p for e in tree.stab(point) for p in e.payloads)
        assert got == expected
        tree.check_invariants()


class TestTableProperties:
    @given(st.lists(st.tuples(st.booleans(), users, times), max_size=80))
    def test_subtable_table_equals_flat_table(self, ops):
        flat = Table("t")
        sub = Table("t", subtable_depth=2)
        model = {}
        for is_put, user, time in ops:
            key = f"t|{user}|{time}"
            if is_put:
                flat.put(key, time)
                sub.put(key, time)
                model[key] = time
            else:
                flat.remove(key)
                sub.remove(key)
                model.pop(key, None)
        assert list(flat.scan("t|", "t}")) == sorted(model.items())
        assert list(sub.scan("t|", "t}")) == sorted(model.items())


class TestPatternProperties:
    @given(users, times, users)
    def test_match_expand_roundtrip(self, user, time, poster):
        pattern = Pattern("t|<user>|<time>|<poster>")
        key = f"t|{user}|{time}|{poster}"
        slots = pattern.match(key)
        assert slots is not None
        assert pattern.expand(slots) == key


class TestCodecProperties:
    values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.floats(allow_nan=False)
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda children: st.lists(children, max_size=5)
        | st.dictionaries(st.text(max_size=8), children, max_size=5),
        max_leaves=20,
    )

    @given(values)
    def test_roundtrip(self, value):
        def normalize(v):
            if isinstance(v, tuple):
                return [normalize(x) for x in v]
            if isinstance(v, list):
                return [normalize(x) for x in v]
            if isinstance(v, dict):
                return {k: normalize(x) for k, x in v.items()}
            return v

        assert decode(encode(value)) == normalize(value)


# ----------------------------------------------------------------------
# The engine's central invariant
# ----------------------------------------------------------------------
def brute_force_timeline(subs, posts, user):
    """The relational answer: SELECT time, poster, text ... (§2.1)."""
    out = []
    for (s_user, poster) in subs:
        if s_user != user:
            continue
        for (p_poster, time), text in posts.items():
            if p_poster == poster:
                out.append((f"t|{user}|{time}|{poster}", text))
    return sorted(out)


engine_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sub"), users, users),
        st.tuples(st.just("unsub"), users, users),
        st.tuples(st.just("post"), users, times),
        st.tuples(st.just("unpost"), users, times),
        st.tuples(st.just("read"), users, users),
    ),
    min_size=1,
    max_size=60,
)


class TestJoinEngineOracle:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(engine_ops, st.booleans())
    def test_timeline_matches_bruteforce_oracle(self, ops, eager_checks):
        op_name = "echeck" if eager_checks else "check"
        srv = PequodServer()
        srv.add_join(
            f"t|<user>|<time>|<poster> = {op_name} s|<user>|<poster> "
            "copy p|<poster>|<time>"
        )
        subs = set()
        posts = {}
        for op in ops:
            kind = op[0]
            if kind == "sub":
                _, user, poster = op
                srv.put(f"s|{user}|{poster}", "1")
                subs.add((user, poster))
            elif kind == "unsub":
                _, user, poster = op
                srv.remove(f"s|{user}|{poster}")
                subs.discard((user, poster))
            elif kind == "post":
                _, poster, time = op
                text = f"tweet-{poster}-{time}"
                srv.put(f"p|{poster}|{time}", text)
                posts[(poster, time)] = text
            elif kind == "unpost":
                _, poster, time = op
                srv.remove(f"p|{poster}|{time}")
                posts.pop((poster, time), None)
            else:  # read mid-stream: materializes ranges, applies pending
                _, user, _ = op
                srv.scan(f"t|{user}|", f"t|{user}}}")
        # Final check: every user's timeline equals the relational join.
        for user in ["ann", "bob", "liz", "jim", "kay"]:
            got = srv.scan(f"t|{user}|", f"t|{user}}}")
            expected = brute_force_timeline(subs, posts, user)
            assert got == expected, f"user {user}"

    @settings(max_examples=30, deadline=None)
    @given(engine_ops)
    def test_aggregate_matches_bruteforce_oracle(self, ops):
        srv = PequodServer()
        srv.add_join("karma|<poster> = count s|<user>|<poster>")
        subs = set()
        for op in ops:
            kind = op[0]
            if kind in ("sub", "unsub"):
                _, user, poster = op
                if kind == "sub":
                    srv.put(f"s|{user}|{poster}", "1")
                    subs.add((user, poster))
                else:
                    srv.remove(f"s|{user}|{poster}")
                    subs.discard((user, poster))
            elif kind == "read":
                _, user, _ = op
                srv.get(f"karma|{user}")
        for poster in ["ann", "bob", "liz", "jim", "kay"]:
            expected = sum(1 for _, p in subs if p == poster)
            got = srv.get(f"karma|{poster}")
            assert got == (str(expected) if expected else None), poster
