"""The write-path overhaul: compiled plans, batched installs, validity.

Mirrors ``test_read_path.py`` for PR 8: the compiled fire path
(``core.plan``) is property-tested against its interpreted reference,
and an end-to-end celebrity workload must leave byte-identical store
state with plans on and off — the same guarantee ``repro bench
write_path`` asserts at fan-out 10k.  The whole-table validity fast
path is exercised through the situations that must defeat it:
invalidation, pending logs, gaps in the cover, and memory limits.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.core.grammar import parse_join
from repro.core.pattern import Pattern
from repro.core.plan import (
    compile_exec_plan,
    plan_compilation_enabled,
    set_plan_compilation,
)
from repro.core.updaters import Updater, install_updater
from repro.store.keys import prefix_upper_bound
from repro.store.store import OrderedStore


def timeline_server(**kwargs) -> PequodServer:
    srv = PequodServer(subtable_config={"t": 2, "p": 2, "s": 2}, **kwargs)
    srv.add_join(TIMELINE_JOIN)
    return srv


# ----------------------------------------------------------------------
# Write-side slot plan: ``slot_tuple`` vs its reference.
# ----------------------------------------------------------------------
PATTERNS = [
    "p|<poster>|<time>",
    "t|<user>|<time>|<poster>",
    "f|<a:4>|<b:6>",
    "d|<x>|mid|<x>|<y>",
    "w|<x:3>|lit|<x:3>",
]

token = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="|{}\n"),
    min_size=0,
    max_size=8,
)


class TestSlotTuple:
    @pytest.mark.parametrize("text", PATTERNS)
    @given(parts=st.lists(token, min_size=0, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_on_arbitrary_keys(self, text, parts):
        pattern = Pattern(text)
        key = "|".join([text.split("|")[0]] + parts)
        assert pattern.slot_tuple(key) == pattern.slot_tuple_reference(key)

    @pytest.mark.parametrize("text", PATTERNS)
    @given(values=st.lists(token.filter(bool), min_size=6, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_on_expanded_keys(self, text, values):
        """Keys built *from* the pattern (widths padded) must extract
        the same tuple both ways."""
        pattern = Pattern(text)
        slots = {}
        for seg in pattern.segments:
            if seg.is_slot and seg.slot not in slots:
                value = values[len(slots)]
                if seg.width is not None:
                    value = value[: seg.width].ljust(seg.width, "_")
                slots[seg.slot] = value
        key = pattern.expand(slots)
        expected = pattern.slot_tuple_reference(key)
        assert pattern.slot_tuple(key) == expected
        if expected is not None:
            assert expected == tuple(slots[n] for n in pattern.slots)

    def test_tuple_order_is_first_appearance_order(self):
        pattern = Pattern("t|<user>|<time>|<poster>")
        assert pattern.slots == ("user", "time", "poster")
        assert pattern.slot_tuple("t|ann|0001|bob") == ("ann", "0001", "bob")

    def test_duplicate_slot_disagreement_rejected(self):
        pattern = Pattern("d|<x>|mid|<x>|<y>")
        assert pattern.slot_tuple("d|a|mid|a|b") == ("a", "b")
        assert pattern.slot_tuple("d|a|mid|zz|b") is None


# ----------------------------------------------------------------------
# ExecPlan compilation subset and FireTemplate binding.
# ----------------------------------------------------------------------
class TestExecPlan:
    def plan_for(self, join_text, source_index):
        join = parse_join(join_text)
        return join, compile_exec_plan(join, source_index, OrderedStore())

    def test_value_source_of_push_join_compiles(self):
        join, plan = self.plan_for(TIMELINE_JOIN, 1)
        assert plan is not None
        assert plan.is_copy
        assert plan.table.name == "t"

    def test_check_source_does_not_compile(self):
        _, plan = self.plan_for(TIMELINE_JOIN, 0)
        assert plan is None

    def test_pull_join_does_not_compile(self):
        _, plan = self.plan_for("o|<a> = pull copy v|<a>|<b>", 0)
        assert plan is None

    def test_bind_inlines_context_and_indexes_free_slots(self):
        join, plan = self.plan_for(TIMELINE_JOIN, 1)
        template = plan.bind({"user": "ann"})
        assert template is not None
        # poster and time come from the source key; user is inlined.
        assert template.out_key(plan.extract("p|bob|0000000007")) == (
            "t|ann|0000000007|bob"
        )
        assert template.injective  # both free slots appear in the output

    def test_bind_without_required_context_fails(self):
        join, plan = self.plan_for(TIMELINE_JOIN, 1)
        assert plan.bind({}) is None  # user unavailable

    def test_context_pinned_source_slot_becomes_check(self):
        join, plan = self.plan_for(TIMELINE_JOIN, 1)
        template = plan.bind({"user": "ann", "poster": "bob"})
        assert template is not None
        assert template.out_key(plan.extract("p|bob|0000000001")) == (
            "t|ann|0000000001|bob"
        )
        # A key for another poster fails the compiled equality check —
        # the ``child_with`` conflict, compiled.
        assert template.out_key(plan.extract("p|liz|0000000001")) is None

    def test_projection_template_is_not_injective(self):
        join, plan = self.plan_for("o|<a> = copy v|<a>|<b>", 0)
        template = plan.bind({})
        assert template is not None
        assert not template.injective  # b is free but projected away

    def test_literal_braces_are_escaped(self):
        join, plan = self.plan_for("o|x{0}y|<a> = copy v|<a>", 0)
        template = plan.bind({})
        assert template.out_key(plan.extract("v|k")) == "o|x{0}y|k"


# ----------------------------------------------------------------------
# Batched installs and O(1) updater dedup.
# ----------------------------------------------------------------------
class TestInstallMany:
    def test_matches_sequential_puts(self):
        store = OrderedStore()
        table = store.table("k")
        pairs = [(f"k|{i:03d}", str(i)) for i in range(20)]
        results, handle = table.install_many(pairs)
        assert handle is not None
        assert [old for _, old in results] == [None] * 20
        assert [k for k, _ in results] == [k for k, _ in pairs]
        for key, value in pairs:
            assert store.get(key) == value
        assert store.stats.get("batched_installs") == 1

    def test_overwrites_report_old_values(self):
        store = OrderedStore()
        table = store.table("k")
        table.put("k|b", "old")
        results, _ = table.install_many([("k|a", "1"), ("k|b", "new")])
        assert results == [("k|a", None), ("k|b", "old")]
        assert store.get("k|b") == "new"

    def test_hint_chaining_earns_hint_hits(self):
        store = OrderedStore()
        table = store.table("k")
        table.put("k|", "floor")
        base = store.stats.get("hint_hits")
        pairs = [(f"k|{i:03d}", "v") for i in range(50)]
        table.install_many(pairs)
        # Sorted contiguous installs ride the insert-after fast path.
        assert store.stats.get("hint_hits") > base + 40


class TestUpdaterDedupIndex:
    def make_updater(self, join, generation=0, lo="p|b|", hi="p|b}"):
        return Updater(
            join=join,
            source_index=1,
            context={"user": "ann"},
            output_lo="t|ann|",
            output_hi="t|ann}",
            lazy=False,
            source_lo=lo,
            source_hi=hi,
            generation=generation,
        )

    def test_reinstall_dedupes_and_refreshes_generation(self):
        join = parse_join(TIMELINE_JOIN)
        store = OrderedStore()
        table = store.table("p")
        first = self.make_updater(join, generation=1)
        assert install_updater(table, first) is first
        again = self.make_updater(join, generation=3)
        survivor = install_updater(table, again)
        assert survivor is first
        assert survivor.generation == 3
        entry = table.updaters.find_entry("p|b|", "p|b}")
        assert len(entry.payloads) == 1

    def test_index_rebuilds_after_discard(self):
        join = parse_join(TIMELINE_JOIN)
        store = OrderedStore()
        table = store.table("p")
        kept = self.make_updater(join)
        gone = Updater(
            join, 1, {"user": "liz"}, "t|liz|", "t|liz}",
            False, "p|b|", "p|b}",
        )
        install_updater(table, kept)
        install_updater(table, gone)
        table.updaters.discard("p|b|", "p|b}", gone)
        entry = table.updaters.find_entry("p|b|", "p|b}")
        assert entry.payload_index is None  # invalidated, rebuilt lazily
        assert install_updater(table, self.make_updater(join)) is kept
        assert len(entry.payloads) == 1

    def test_distinct_contexts_accumulate(self):
        join = parse_join(TIMELINE_JOIN)
        store = OrderedStore()
        table = store.table("p")
        for i in range(5):
            install_updater(
                table,
                Updater(
                    join, 1, {"user": f"u{i}"}, f"t|u{i}|", f"t|u{i}}}",
                    False, "p|b|", "p|b}",
                ),
            )
        entry = table.updaters.find_entry("p|b|", "p|b}")
        assert len(entry.payloads) == 5


# ----------------------------------------------------------------------
# End-to-end parity: compiled plans vs the interpreted reference.
# ----------------------------------------------------------------------
def state_digest(srv: PequodServer) -> str:
    items = []
    for tag in ("t", "p", "s"):
        items.extend(srv.scan(f"{tag}|", f"{tag}}}"))
    return hashlib.sha256(repr(items).encode()).hexdigest()


class TestWritePathParity:
    """The celebrity workload at unit-test scale: every config must
    leave byte-identical store state."""

    FAN_OUT = 1000

    def drive(self, plans: bool, fastpath: bool = False) -> str:
        previous = set_plan_compilation(plans)
        try:
            srv = timeline_server()
            srv.engine.enable_whole_table_fastpath = fastpath
            followers = [f"u{i:05d}" for i in range(self.FAN_OUT)]
            for u in followers:
                srv.put(f"s|{u}|celeb", "1")
            srv.put("p|celeb|0000000000", "warmup")
            for u in followers:
                srv.scan(f"t|{u}|", prefix_upper_bound(f"t|{u}|"))
            srv.scan("t|", "t}")  # tile the gaps: contiguous cover
            # Single-key fan-out writes, including an overwrite and a
            # retraction.
            srv.put("p|celeb|0000000001", "post one")
            srv.put("p|celeb|0000000001", "post one, edited")
            srv.remove("p|celeb|0000000000")
            # Batched fan-out writes: coalesced, one maintenance pass.
            with srv.write_batch() as batch:
                for t in range(2, 10):
                    batch.put(f"p|celeb|{t:010d}", f"batch {t}")
                batch.remove("p|celeb|0000000002")
            # Interleave reads so validation runs between write rounds.
            srv.scan("t|u00000|", prefix_upper_bound("t|u00000|"))
            srv.scan("t|", "t}")
            with srv.write_batch() as batch:
                for t in range(10, 14):
                    batch.put(f"p|celeb|{t:010d}", f"batch {t}")
            return state_digest(srv)
        finally:
            set_plan_compilation(previous)

    def test_compiled_matches_reference(self):
        reference = self.drive(plans=False)
        assert self.drive(plans=True) == reference
        assert self.drive(plans=True, fastpath=True) == reference

    def test_compiled_path_actually_fires(self):
        previous = set_plan_compilation(True)
        try:
            srv = timeline_server()
            srv.put("s|ann|bob", "1")
            srv.scan("t|ann|", "t|ann}")
            srv.put("p|bob|0000000001", "x")
            with srv.write_batch() as batch:
                batch.put("p|bob|0000000002", "y")
                batch.put("p|bob|0000000003", "z")
            assert srv.stats.get("write_plan_compiles") >= 1
            assert srv.stats.get("write_plan_fires") >= 3
            assert srv.stats.get("write_batched_installs") >= 1
            assert srv.scan("t|ann|", "t|ann}") == [
                ("t|ann|0000000001|bob", "x"),
                ("t|ann|0000000002|bob", "y"),
                ("t|ann|0000000003|bob", "z"),
            ]
        finally:
            set_plan_compilation(previous)

    def test_toggle_restores_previous_setting(self):
        initial = plan_compilation_enabled()
        previous = set_plan_compilation(False)
        assert previous == initial
        assert not plan_compilation_enabled()
        set_plan_compilation(previous)
        assert plan_compilation_enabled() == initial


# ----------------------------------------------------------------------
# Whole-table validity fast path.
# ----------------------------------------------------------------------
class TestWholeTableFastpath:
    def quiescent_server(self) -> PequodServer:
        srv = timeline_server()
        for u in ("ann", "bob", "liz"):
            srv.put(f"s|{u}|celeb", "1")
        srv.put("p|celeb|0000000001", "x")
        for u in ("ann", "bob", "liz"):
            srv.scan(f"t|{u}|", prefix_upper_bound(f"t|{u}|"))
        srv.scan("t|", "t}")  # tile gaps -> contiguous, all-valid cover
        return srv

    def test_quiescent_cross_scan_hits(self):
        srv = self.quiescent_server()
        before = srv.scan("t|", "t}")
        hits = srv.stats.get("write_whole_table_fastpath_hits")
        assert srv.scan("t|", "t}") == before
        assert srv.stats.get("write_whole_table_fastpath_hits") > hits

    def test_pending_log_defeats_it_until_drained(self):
        srv = self.quiescent_server()
        srv.scan("t|", "t}")
        assert srv.stats.get("write_whole_table_fastpath_hits") > 0
        srv.put("s|ann|dave", "1")  # partial invalidation: pending entry
        srv.put("p|dave|0000000002", "from dave")
        hits = srv.stats.get("write_whole_table_fastpath_hits")
        got = srv.scan("t|", "t}")  # must walk, drain, and stay correct
        assert ("t|ann|0000000002|dave", "from dave") in got
        # Drained and revalidated: the fast path re-engages.
        assert srv.scan("t|", "t}") == got
        assert srv.stats.get("write_whole_table_fastpath_hits") > hits

    def test_invalidation_defeats_it(self):
        srv = self.quiescent_server()
        srv.scan("t|", "t}")
        srv.remove("s|bob|celeb")  # complete invalidation
        got = srv.scan("t|", "t}")
        assert not any(k.startswith("t|bob|") for k, _ in got)

    def test_gap_in_cover_defeats_it(self):
        srv = timeline_server()
        srv.put("s|ann|celeb", "1")
        srv.put("s|liz|celeb", "1")
        srv.put("p|celeb|0000000001", "x")
        srv.scan("t|ann|", prefix_upper_bound("t|ann|"))
        srv.scan("t|liz|", prefix_upper_bound("t|liz|"))
        # No tiling cross-scan: the cover has gaps.
        srv.scan("t|ann|", prefix_upper_bound("t|ann|"))
        assert srv.stats.get("write_whole_table_fastpath_hits") == 0

    def test_memory_limit_disables_it(self):
        srv = timeline_server(memory_limit=10_000_000)
        assert not srv.engine.enable_whole_table_fastpath
        unlimited = timeline_server()
        assert unlimited.engine.enable_whole_table_fastpath

    def test_eager_writes_keep_it_engaged(self):
        """Copy-join maintenance keeps ranges valid, so a quiescent
        scan after fan-out writes still takes the fast path — and sees
        the new values."""
        srv = self.quiescent_server()
        srv.scan("t|", "t}")
        srv.put("p|celeb|0000000009", "fresh")
        hits = srv.stats.get("write_whole_table_fastpath_hits")
        got = srv.scan("t|", "t}")
        assert ("t|ann|0000000009|celeb", "fresh") in got
        assert srv.stats.get("write_whole_table_fastpath_hits") > hits
