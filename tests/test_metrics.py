"""Tests for the metrics layer: histograms, flat series keys, cluster
merging, Prometheus rendering, scrape-time server derivation, and the
HTTP endpoint."""

import asyncio
import re

import pytest

from repro import PequodServer
from repro.metrics import (
    Histogram,
    LATENCY_BUCKETS,
    MetricsHttpServer,
    ServerMetrics,
    merge_snapshots,
    render_prometheus,
    sample_key,
    split_key,
)

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(105.0)

    def test_boundary_value_goes_to_its_bucket(self):
        h = Histogram((1.0, 2.0))
        h.observe(1.0)  # inclusive upper bound
        assert h.counts == [1, 0, 0]

    def test_percentile(self):
        h = Histogram((1.0, 2.0, 4.0))
        for _ in range(90):
            h.observe(0.5)
        for _ in range(10):
            h.observe(3.0)
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 4.0

    def test_percentile_empty(self):
        assert Histogram((1.0,)).percentile(95) == 0.0

    def test_samples_are_cumulative_with_inf(self):
        h = Histogram((1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        got = dict(h.samples("lat", backend="rpc"))
        assert got['lat_bucket{backend="rpc",le="1"}'] == 1.0
        assert got['lat_bucket{backend="rpc",le="2"}'] == 2.0
        assert got['lat_bucket{backend="rpc",le="+Inf"}'] == 3.0
        assert got['lat_count{backend="rpc"}'] == 3.0
        assert got['lat_sum{backend="rpc"}'] == pytest.approx(11.0)

    def test_default_latency_buckets_sorted(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestFlatKeys:
    def test_sample_key_no_labels(self):
        assert sample_key("op_get") == "op_get"

    def test_sample_key_sorts_labels(self):
        assert (
            sample_key("x", b="2", a="1") == 'x{a="1",b="2"}'
        )

    def test_sample_key_allows_name_label(self):
        # The metric-name parameter is positional-only, so a label
        # literally called "name" (the generic stat family) works.
        assert sample_key("stat", name="op_get") == 'stat{name="op_get"}'

    def test_label_escaping(self):
        key = sample_key("x", t='a"b\\c\nd')
        name, labels = split_key(key)
        assert name == "x"
        assert labels == '{t="a\\"b\\\\c\\nd"}'

    def test_split_key_roundtrip(self):
        name, labels = split_key('join_memo_hits_total{table="t"}')
        assert name == "join_memo_hits_total"
        assert labels == '{table="t"}'

    def test_split_key_sanitizes_garbage(self):
        name, labels = split_key("99 bad key!")
        assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$", name)
        assert labels == ""


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = merge_snapshots([{"op_get": 2.0}, {"op_get": 3.0}])
        assert merged["op_get"] == 5.0

    def test_max_series_take_max(self):
        a = {'join_stale_age_max_seconds{table="t"}': 0.5}
        b = {'join_stale_age_max_seconds{table="t"}': 2.0}
        merged = merge_snapshots([a, b])
        assert merged['join_stale_age_max_seconds{table="t"}'] == 2.0

    def test_disjoint_keys_union(self):
        merged = merge_snapshots([{"a": 1.0}, {"b": 2.0}])
        assert merged == {"a": 1.0, "b": 2.0}


class TestRenderPrometheus:
    def test_bare_counters_fold_into_stat_family(self):
        text = render_prometheus({"op_get": 3.0})
        assert 'repro_stat{name="op_get"} 3' in text
        assert "# TYPE repro_stat counter" in text

    def test_labeled_series_keep_their_name(self):
        text = render_prometheus({'join_memo_hits_total{table="t"}': 7.0})
        assert 'repro_join_memo_hits_total{table="t"} 7' in text
        assert "# TYPE repro_join_memo_hits_total counter" in text

    def test_standalone_gauges_not_folded(self):
        text = render_prometheus({"overloaded": 1.0, "memory_bytes": 640.0})
        assert "repro_overloaded 1" in text
        assert "# TYPE repro_overloaded gauge" in text
        assert "repro_memory_bytes 640" in text
        assert "# TYPE repro_memory_bytes gauge" in text

    def test_histogram_series_typed_histogram(self):
        h = Histogram((0.1,))
        h.observe(0.05)
        text = render_prometheus(dict(h.samples("rpc_frame_latency_seconds")))
        assert "# TYPE repro_rpc_frame_latency_seconds histogram" in text

    def test_histogram_buckets_ascending_with_inf_last(self):
        h = Histogram((0.5, 0.001, 0.1))
        for v in (0.0005, 0.05, 0.3, 2.0):
            h.observe(v)
        text = render_prometheus(dict(h.samples("lat_seconds")))
        bounds = re.findall(r'repro_lat_seconds_bucket\{le="([^"]+)"\}', text)
        assert bounds == ["0.001", "0.1", "0.5", "+Inf"]
        # _sum and _count follow the buckets.
        order = [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if line.startswith("repro_lat_seconds")
        ]
        assert order[-2:] == ["repro_lat_seconds_sum", "repro_lat_seconds_count"]

    def test_every_sample_line_well_formed(self):
        server = _traffic_server()
        text = server.metrics_text()
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [-+0-9.eInfNa]+$"
        )
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert sample_re.match(line), line

    def test_non_numeric_values_skipped(self):
        text = render_prometheus({"weird": "a string", "ok_total": 1.0})
        assert "weird" not in text
        assert "repro_ok_total 1" in text


def _traffic_server(**kwargs) -> PequodServer:
    server = PequodServer(**kwargs)
    server.add_join(TIMELINE)
    server.put("s|ann|bob", "1")
    server.put("p|bob|0100", "hello")
    server.scan("t|ann|", "t|ann}")
    server.put("p|bob|0200", "again")
    server.scan("t|ann|", "t|ann}")
    return server


class TestServerMetrics:
    def test_snapshot_is_stats_superset(self):
        server = _traffic_server()
        snap = server.metrics_snapshot()
        for key, value in server.stats.snapshot().items():
            assert snap[key] == value

    def test_per_join_series_present(self):
        snap = _traffic_server().metrics_snapshot()
        assert snap['join_validations_total{table="t"}'] >= 2
        assert snap['join_computes_total{table="t"}'] >= 1
        assert 'join_memo_hits_total{table="t"}' in snap
        assert 'join_stale_served_total{table="t"}' in snap

    def test_backlog_and_memory_series_present(self):
        snap = _traffic_server().metrics_snapshot()
        assert 'status_ranges{table="t"}' in snap
        assert 'pending_log_depth{table="t"}' in snap
        assert snap['table_keys{table="t"}'] >= 1
        assert snap['table_memory_bytes{table="t"}'] > 0
        assert snap["memory_bytes"] > 0

    def test_write_path_series_present(self):
        server = _traffic_server()
        snap = server.metrics_snapshot()
        # The second put fan-fires through a compiled plan.
        assert snap["write_plan_compiles_total"] >= 1
        assert snap["write_plan_fires_total"] >= 1
        assert snap["write_fanout_max"] >= 1
        assert "write_batched_installs_total" in snap
        assert "write_whole_table_fastpath_hits_total" in snap
        with server.write_batch() as batch:
            batch.put("p|bob|0300", "3")
            batch.put("p|bob|0400", "4")
        assert server.metrics_snapshot()["write_batched_installs_total"] >= 1

    def test_fanout_max_merges_as_max(self):
        merged = merge_snapshots(
            [{"write_fanout_max": 3.0}, {"write_fanout_max": 9.0}]
        )
        assert merged["write_fanout_max"] == 9.0

    def test_unscraped_server_builds_no_metrics_object(self):
        server = _traffic_server()
        assert server._metrics is None  # lazy until first scrape
        server.metrics_snapshot()
        assert server._metrics is not None

    def test_extra_source_merged(self):
        server = PequodServer()
        metrics = ServerMetrics(server)
        metrics.add_source(lambda: [("extra_total", 42.0)])
        assert metrics.snapshot()["extra_total"] == 42.0

    def test_watch_series_appear_with_hub(self):
        server = _traffic_server()
        handle = server.watch("t|ann|", "t|ann}", lambda ev: None)
        try:
            snap = server.metrics_snapshot()
            assert snap["watch_watchers"] == 1.0
        finally:
            handle.close()


class TestMetricsHttpServer:
    def _fetch(self, host, port, path):
        async def go():
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode()
            )
            await writer.drain()
            data = await reader.read()
            writer.close()
            return data.decode()

        return go()

    def test_serves_metrics_and_404(self):
        server = _traffic_server()

        async def body():
            http = MetricsHttpServer(server.metrics_text)
            await http.start()
            try:
                ok = await self._fetch("127.0.0.1", http.port, "/metrics")
                assert ok.startswith("HTTP/1.0 200")
                assert "text/plain; version=0.0.4" in ok
                assert 'repro_join_validations_total{table="t"}' in ok
                missing = await self._fetch(
                    "127.0.0.1", http.port, "/nope"
                )
                assert missing.startswith("HTTP/1.0 404")
            finally:
                await http.close()

        asyncio.new_event_loop().run_until_complete(body())

    def test_port_resolved_after_start(self):
        async def body():
            http = MetricsHttpServer(lambda: "x_total 1\n")
            assert http.port == 0
            await http.start()
            try:
                assert http.port > 0
            finally:
                await http.close()

        asyncio.new_event_loop().run_until_complete(body())
