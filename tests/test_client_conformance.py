"""Backend conformance: one suite, every deployment shape, sync and
async.

Each test runs against all three backends — in-process, real TCP RPC,
and a simulated cluster — through the synchronous facade (the
parameterized ``client`` fixture) *and* through the async-native API
(the ``TestAsync*`` classes), asserting identical results for the
paper's §2 walkthrough, batches, aggregates, error cases, and the
server-push watch streams (ordering, range filtering, unsubscribe,
disconnect cleanup).  The local backend is the semantic reference;
staleness is normalized by ``settle()`` (a no-op off-cluster), the one
deliberate difference the API admits (§2.4).
"""

import shutil
import tempfile
import weakref

import pytest

from repro.client import (
    BadRequestError,
    ClientError,
    JoinSpecError,
    LocalClient,
    NotFoundError,
    ServerError,
    join,
    make_async_client,
    make_client,
)

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)
KARMA = "karma|<author> = count vote|<author>|<id>|<voter>"

#: Partitioned base tables for the cluster backend (the other
#: backends ignore this).
BASE_TABLES = ("p", "s", "vote", "article", "comment")

#: "disk" is the local backend on the durable disk-backed store (WAL +
#: value spill under a per-test data dir) — the whole suite doubles as
#: the persistence tier's semantic oracle.
BACKENDS = ("local", "rpc", "cluster", "disk")


def _sync_client(backend, **extra):
    """make_client for one conformance backend; "disk" maps to the
    local backend on the durable store, rooted in a throwaway data
    dir that outlives the client and is reaped behind it."""
    if backend == "disk":
        data_dir = tempfile.mkdtemp(prefix="pequod-disk-")
        c = make_client(
            "local",
            base_tables=BASE_TABLES,
            store_impl="disk",
            data_dir=data_dir,
            **extra,
        )
        weakref.finalize(c, shutil.rmtree, data_dir, ignore_errors=True)
        return c
    return make_client(backend, base_tables=BASE_TABLES, **extra)


@pytest.fixture(params=BACKENDS)
def client(request):
    c = _sync_client(request.param)
    yield c
    c.close()


class TestWalkthrough:
    """The §2 Twip walkthrough, byte-identical on every backend."""

    def test_demand_computation_and_maintenance(self, client):
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "hello!")
        client.settle()
        assert client.scan_prefix("t|ann|") == [("t|ann|0100|bob", "hello!")]
        # Eager incremental maintenance after the range is cached.
        client.put("p|bob|0120", "again")
        client.settle()
        assert client.scan_prefix("t|ann|") == [
            ("t|ann|0100|bob", "hello!"),
            ("t|ann|0120|bob", "again"),
        ]

    def test_subscribe_and_unsubscribe(self, client):
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "bob's tweet")
        client.put("p|liz|0050", "liz's old tweet")
        client.settle()
        assert len(client.scan_prefix("t|ann|")) == 1
        # Lazy subscription handling: liz's old tweet appears on read.
        client.put("s|ann|liz", "1")
        client.settle()
        assert client.scan_prefix("t|ann|") == [
            ("t|ann|0050|liz", "liz's old tweet"),
            ("t|ann|0100|bob", "bob's tweet"),
        ]
        # Unsubscribe retracts the copied tweets.
        assert client.remove("s|ann|liz") is True
        client.settle()
        assert client.scan_prefix("t|ann|") == [
            ("t|ann|0100|bob", "bob's tweet")
        ]

    def test_get_put_remove_roundtrip(self, client):
        assert client.get("p|bob|0100") is None
        client.put("p|bob|0100", "x")
        assert client.get("p|bob|0100") == "x"
        assert client.exists("p|bob|0100") is True
        client.put("p|bob|0100", "y")  # overwrite
        assert client.get("p|bob|0100") == "y"
        assert client.remove("p|bob|0100") is True
        assert client.remove("p|bob|0100") is False
        assert client.get("p|bob|0100") is None

    def test_scan_forms_agree(self, client):
        client.put_many([(f"p|u|{i:04d}", f"v{i}") for i in range(8)])
        client.settle()
        full = client.scan("p|u|", "p|u}")
        assert full == client.scan_prefix("p|u|")
        assert client.count("p|u|", "p|u}") == 8
        assert client.scan("p|u|0002", "p|u|0005") == [
            ("p|u|0002", "v2"),
            ("p|u|0003", "v3"),
            ("p|u|0004", "v4"),
        ]
        assert client.scan("p|u|0005", "p|u|0005") == []


class TestBatches:
    def test_write_batch_context_manager(self, client):
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.settle()
        client.scan_prefix("t|ann|")  # warm the timeline
        with client.write_batch() as batch:
            batch.put("p|bob|0100", "one")
            batch.put("p|bob|0200", "two")
        client.settle()
        assert client.scan_prefix("t|ann|") == [
            ("t|ann|0100|bob", "one"),
            ("t|ann|0200|bob", "two"),
        ]

    def test_batch_coalesces_per_key(self, client):
        batch = client.write_batch()
        batch.put("p|bob|0100", "draft")
        batch.put("p|bob|0100", "final")
        batch.remove("p|bob|0999")  # remove of an absent key
        applied = batch.apply()
        assert applied == 1
        assert batch.coalesced_ops == 1
        assert client.get("p|bob|0100") == "final"

    def test_put_many_returns_changes(self, client):
        pairs = [("p|a|1", "x"), ("p|b|1", "y"), ("p|c|1", "z")]
        assert client.put_many(pairs) == 3
        # A rewrite applies each op again — same count on every backend.
        assert client.put_many(pairs) == 3
        client.settle()
        assert client.count("p|", "p}") == 3

    def test_apply_batch_accepts_pairs(self, client):
        applied = client.apply_batch(
            [("p|a|1", "x"), ("p|b|1", None), ("p|c|1", "z")]
        )
        assert applied == 2  # the remove targets an absent key
        assert client.get("p|a|1") == "x"


class TestAggregates:
    def test_count_join(self, client):
        client.add_join(KARMA)
        client.put("vote|bob|001|ann", "1")
        client.put("vote|bob|001|liz", "1")
        client.settle()
        assert client.get("karma|bob") == "2"
        client.put("vote|bob|002|jim", "1")
        client.settle()
        assert client.get("karma|bob") == "3"

    def test_aggregate_tracks_removal(self, client):
        client.add_join(KARMA)
        client.put("vote|bob|001|ann", "1")
        client.put("vote|bob|001|liz", "1")
        client.settle()
        assert client.get("karma|bob") == "2"
        assert client.remove("vote|bob|001|liz") is True
        client.settle()
        assert client.get("karma|bob") == "1"


class TestJoinInstallation:
    def test_grammar_and_builder_agree(self, client):
        text_form = client.add_join(TIMELINE)
        built = (
            join("t2|<user>|<time>|<poster>")
            .check("s|<user>|<poster>")
            .copy("p|<poster>|<time>")
        )
        builder_form = client.add_join(built)
        assert text_form == [TIMELINE]
        assert builder_form == [TIMELINE.replace("t|", "t2|", 1)]

    def test_multiple_joins_one_call(self, client):
        installed = client.add_join(f"{TIMELINE};{KARMA}")
        assert len(installed) == 2

    @pytest.mark.parametrize("shape", ["text", "sequence"])
    def test_failed_multi_join_installs_nothing(self, client, shape):
        """Add-join is atomic per call — for ';'-joined text and for
        sequence input alike: a failing statement leaves no partial
        install behind (and, on a cluster, no divergence between
        compute servers)."""
        first = "cyc|<x> = copy dep|<x>"
        second = "dep|<x> = copy cyc|<x>"
        spec = f"{first}; {second}" if shape == "text" else [first, second]
        with pytest.raises(JoinSpecError):
            client.add_join(spec)
        client.put("dep|1", "v")
        client.settle()
        # The first statement did not survive: nothing was computed.
        assert client.scan_prefix("cyc|") == []

    def test_joins_drive_data_identically(self, client):
        client.add_join(
            join("page|<a>|<id>|k|<c>").check("comment|<a>|<id>|<c>")
            .copy("karma|<c>")
        )
        client.add_join(KARMA)
        client.put("comment|ann|001|bob", "nice")
        client.put("vote|bob|001|cid", "1")
        client.settle()
        assert client.scan_prefix("page|ann|001|") == [
            ("page|ann|001|k|bob", "1")
        ]


class TestComputedRangeWrites:
    """Direct writes into a join's output range behave identically:
    on a cluster they route to the compute tier the range is read
    from, not to a base home no reader consults."""

    def test_manual_write_visible(self, client):
        client.add_join(TIMELINE)
        client.put("t|ann|0100|bob", "manual")
        client.settle()
        assert client.get("t|ann|0100|bob") == "manual"
        assert client.scan_prefix("t|ann|") == [("t|ann|0100|bob", "manual")]

    def test_manual_write_merges_with_computed(self, client):
        client.add_join(TIMELINE)
        client.put("t|ann|0100|bob", "manual")
        client.put("s|ann|bob", "1")
        client.put("p|bob|0200", "real")
        client.settle()
        assert client.scan_prefix("t|ann|") == [
            ("t|ann|0100|bob", "manual"),
            ("t|ann|0200|bob", "real"),
        ]

    def test_cross_affinity_scan_sees_every_write(self, client):
        """A scan spanning several users' computed slices returns
        direct writes for all of them (on a cluster those writes live
        on different compute servers)."""
        client.add_join(TIMELINE)
        client.put("t|ann|0100|bob", "for ann")
        client.put("t|liz|0100|bob", "for liz")
        client.put("t|zed|0100|bob", "for zed")
        client.settle()
        assert client.scan_prefix("t|") == [
            ("t|ann|0100|bob", "for ann"),
            ("t|liz|0100|bob", "for liz"),
            ("t|zed|0100|bob", "for zed"),
        ]
        assert client.count("t|", "t}") == 3

    def test_batched_computed_writes(self, client):
        client.add_join(TIMELINE)
        applied = client.apply_batch(
            [("t|ann|0100|bob", "manual"), ("p|bob|0300", "base")]
        )
        assert applied == 2
        client.settle()
        assert client.get("t|ann|0100|bob") == "manual"
        assert client.get("p|bob|0300") == "base"
        assert client.remove("t|ann|0100|bob") is True
        client.settle()
        assert client.get("t|ann|0100|bob") is None


class TestErrors:
    """The unified exception hierarchy, identical over every transport."""

    def test_unparseable_join(self, client):
        with pytest.raises(JoinSpecError):
            client.add_join("not a join at all")

    def test_recursive_join_rejected(self, client):
        with pytest.raises(JoinSpecError):
            client.add_join("t|<a> = copy t|<a>")

    def test_join_error_is_bad_request_is_client_error(self, client):
        with pytest.raises(BadRequestError):
            client.add_join("nope")
        with pytest.raises(ClientError):
            client.add_join("nope")

    def test_non_string_value_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.put("p|bob|0100", 42)
        with pytest.raises(BadRequestError):
            client.put_many([("p|bob|0100", None)])

    def test_malformed_batch_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.apply_batch([("p|bob|0100", 42)])
        with pytest.raises(BadRequestError):
            client.apply_batch([("", "empty key")])

    def test_client_usable_after_errors(self, client):
        with pytest.raises(ClientError):
            client.add_join("broken")
        client.put("p|bob|0100", "still works")
        assert client.get("p|bob|0100") == "still works"

    def test_server_error_type_exists(self, client):
        # Nothing in the normal API raises ServerError; assert the
        # type is part of the shared hierarchy so transports can map
        # genuine faults onto it.
        assert issubclass(ServerError, ClientError)


class TestStats:
    def test_stats_reflect_work(self, client):
        client.put("p|a|1", "x")
        client.get("p|a|1")
        stats = client.stats()
        assert stats.get("op_put", 0) >= 1
        assert stats.get("op_get", 0) >= 1


class TestFactory:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BadRequestError):
            make_client("redis")

    @pytest.mark.parametrize("backend", ["local", "cluster"])
    def test_connect_intent_rejected_off_rpc(self, backend):
        with pytest.raises(BadRequestError):
            make_client(backend, port=7709)
        with pytest.raises(BadRequestError):
            make_client(backend, host="10.0.0.5")

    def test_rpc_by_port_rejects_server_kwargs(self):
        with pytest.raises(BadRequestError):
            make_client("rpc", port=7709, subtable_config={"t": 2})

    def test_rpc_host_alone_means_connect(self):
        """make_client('rpc', host=...) connects (to the default
        port) rather than silently starting a fresh empty server."""
        from repro.client import TransportError

        with pytest.raises(TransportError):
            # RFC 2606 reserves .invalid: resolution always fails, so
            # this cannot start a server and cannot accidentally
            # connect to one.
            make_client("rpc", host="host.invalid")


class TestBackendReporting:
    def test_backend_tag(self, client):
        assert client.backend in ("local", "rpc", "cluster")

    def test_local_exposes_server(self):
        with make_client("local") as c:
            assert isinstance(c, LocalClient)
            c.put("p|a|1", "x")
            assert c.server.key_count() == 1


# ======================================================================
# Async conformance: the same semantics through the async-native API
# ======================================================================
async def _async_client(backend):
    """Build an async client for one backend (awaitable)."""
    if backend == "disk":
        data_dir = tempfile.mkdtemp(prefix="pequod-disk-")
        client = await make_async_client(
            "local",
            base_tables=BASE_TABLES,
            store_impl="disk",
            data_dir=data_dir,
        )
        weakref.finalize(client, shutil.rmtree, data_dir, ignore_errors=True)
        return client
    return await make_async_client(backend, base_tables=BASE_TABLES)


@pytest.mark.parametrize("backend", BACKENDS)
class TestAsyncConformance:
    async def test_walkthrough(self, backend):
        async with await _async_client(backend) as client:
            await client.add_join(TIMELINE)
            await client.put("s|ann|bob", "1")
            await client.put("p|bob|0100", "hello!")
            await client.settle()
            assert await client.scan_prefix("t|ann|") == [
                ("t|ann|0100|bob", "hello!")
            ]
            await client.put("p|bob|0120", "again")
            await client.settle()
            assert await client.scan_prefix("t|ann|") == [
                ("t|ann|0100|bob", "hello!"),
                ("t|ann|0120|bob", "again"),
            ]

    async def test_roundtrip_and_derived_ops(self, backend):
        async with await _async_client(backend) as client:
            assert await client.get("p|bob|0100") is None
            await client.put("p|bob|0100", "x")
            assert await client.get("p|bob|0100") == "x"
            assert await client.exists("p|bob|0100") is True
            assert await client.remove("p|bob|0100") is True
            assert await client.remove("p|bob|0100") is False
            await client.put_many([(f"p|u|{i:04d}", f"v{i}") for i in range(6)])
            await client.settle()
            assert await client.count("p|u|", "p|u}") == 6
            assert await client.scan_prefix("p|u|") == await client.scan(
                "p|u|", "p|u}"
            )

    async def test_write_batch_async_context(self, backend):
        async with await _async_client(backend) as client:
            await client.add_join(TIMELINE)
            await client.put("s|ann|bob", "1")
            await client.settle()
            await client.scan_prefix("t|ann|")  # warm the timeline
            async with client.write_batch() as batch:
                batch.put("p|bob|0100", "one")
                batch.put("p|bob|0100", "two")  # coalesces in-batch
                batch.put("p|bob|0200", "three")
            await client.settle()
            assert batch.coalesced_ops == 1
            assert await client.scan_prefix("t|ann|") == [
                ("t|ann|0100|bob", "two"),
                ("t|ann|0200|bob", "three"),
            ]

    async def test_aggregates(self, backend):
        async with await _async_client(backend) as client:
            await client.add_join(KARMA)
            await client.put("vote|bob|001|ann", "1")
            await client.put("vote|bob|001|liz", "1")
            await client.settle()
            assert await client.get("karma|bob") == "2"
            assert await client.remove("vote|bob|001|liz") is True
            await client.settle()
            assert await client.get("karma|bob") == "1"

    async def test_errors(self, backend):
        async with await _async_client(backend) as client:
            with pytest.raises(JoinSpecError):
                await client.add_join("not a join at all")
            with pytest.raises(BadRequestError):
                await client.put("p|bob|0100", 42)
            with pytest.raises(BadRequestError):
                await client.apply_batch([("", "empty key")])
            # The client stays usable after errors.
            await client.put("p|bob|0100", "still works")
            assert await client.get("p|bob|0100") == "still works"

    async def test_stats(self, backend):
        async with await _async_client(backend) as client:
            await client.put("p|a|1", "x")
            await client.get("p|a|1")
            stats = await client.stats()
            assert stats.get("op_put", 0) >= 1
            assert stats.get("op_get", 0) >= 1


# ======================================================================
# Sync/async parity: byte-identical store state on the same workload
# ======================================================================
def _conformance_ops():
    """A deterministic workload touching joins, batches, aggregates,
    overwrites, and removes."""
    ops = [("join", TIMELINE), ("join", KARMA)]
    users = ["ann", "bob", "cid", "liz"]
    for u in users:
        for v in users:
            if u != v:
                ops.append(("put", f"s|{u}|{v}", "1"))
    for tick in range(12):
        poster = users[tick % len(users)]
        ops.append(("put", f"p|{poster}|{tick:04d}", f"tweet {tick}"))
        if tick % 3 == 0:
            ops.append(("scan", f"t|{users[(tick + 1) % len(users)]}|"))
        if tick % 4 == 0:
            ops.append(("vote", f"vote|{poster}|{tick:03d}|ann"))
    ops.append(("batch", [("p|ann|9000", "batched"), ("p|bob|0000", None)]))
    ops.append(("remove", "s|liz|ann"))
    for u in users:
        ops.append(("scan", f"t|{u}|"))
    return ops


def _read_state(scan_prefix):
    state = []
    for prefix in ("t|", "p|", "s|", "vote|", "karma|"):
        state.extend(scan_prefix(prefix))
    return state


def _drive_sync(client):
    for op in _conformance_ops():
        if op[0] == "join":
            client.add_join(op[1])
        elif op[0] == "put":
            client.put(op[1], op[2])
        elif op[0] == "vote":
            client.put(op[1], "1")
        elif op[0] == "scan":
            client.scan_prefix(op[1])
        elif op[0] == "batch":
            client.apply_batch(op[1])
        elif op[0] == "remove":
            client.remove(op[1])
        client.settle()
    return _read_state(client.scan_prefix)


async def _drive_async(client):
    for op in _conformance_ops():
        if op[0] == "join":
            await client.add_join(op[1])
        elif op[0] == "put":
            await client.put(op[1], op[2])
        elif op[0] == "vote":
            await client.put(op[1], "1")
        elif op[0] == "scan":
            await client.scan_prefix(op[1])
        elif op[0] == "batch":
            await client.apply_batch(op[1])
        elif op[0] == "remove":
            await client.remove(op[1])
        await client.settle()
    state = []
    for prefix in ("t|", "p|", "s|", "vote|", "karma|"):
        state.extend(await client.scan_prefix(prefix))
    return state


class TestSyncAsyncParity:
    def test_state_identical_across_all_backends(self):
        """The acceptance bar: the conformance workload leaves
        byte-identical observable state through every sync facade and
        every async backend."""
        import asyncio

        async def drive(backend):
            async with await _async_client(backend) as client:
                return await _drive_async(client)

        states = {}
        for backend in BACKENDS:
            with _sync_client(backend) as client:
                states[f"sync-{backend}"] = _drive_sync(client)
            states[f"async-{backend}"] = asyncio.run(drive(backend))
        reference = states["sync-local"]
        assert reference  # the workload actually produced data
        for name, state in states.items():
            assert state == reference, f"{name} diverged from sync-local"


# ======================================================================
# Watch streams: server push on every backend (§2.4)
# ======================================================================
class TestWatchSync:
    """iter_watch through the sync facade, all three backends."""

    def test_delivers_committed_changes_in_order(self, client):
        watch = client.iter_watch("p|", "p}")
        client.put("p|a|1", "x")
        client.put("p|a|2", "y")
        client.put("p|a|1", "x2")
        client.settle()
        events = watch.drain()
        assert [(e.key, e.new, e.kind.value) for e in events] == [
            ("p|a|1", "x", "insert"),
            ("p|a|2", "y", "insert"),
            ("p|a|1", "x2", "update"),
        ]
        # Key-version order: seqs strictly increase.
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        watch.close()

    def test_range_filtering(self, client):
        watch = client.iter_watch("p|b|", "p|b}")
        client.put("p|a|1", "outside")
        client.put("p|b|1", "inside")
        client.put("p|c|1", "outside")
        client.remove("p|b|1")
        client.settle()
        events = watch.drain()
        assert [(e.key, e.kind.value) for e in events] == [
            ("p|b|1", "insert"),
            ("p|b|1", "remove"),
        ]
        watch.close()

    def test_close_stops_delivery(self, client):
        watch = client.iter_watch("p|", "p}")
        client.put("p|a|1", "x")
        client.settle()
        assert len(watch.drain()) == 1
        watch.close()
        client.put("p|a|2", "y")
        client.settle()
        assert watch.drain() == []

    def test_watch_sees_maintained_outputs(self, client):
        """Join maintenance commits count as changes: the watcher of a
        computed range sees every output the engine installs."""
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.settle()
        client.scan_prefix("t|ann|")  # materialize (empty) timeline
        watch = client.iter_watch("t|ann|", "t|ann}")
        client.put("p|bob|0100", "pushed")
        client.settle()
        events = watch.drain()
        assert [(e.key, e.new) for e in events] == [
            ("t|ann|0100|bob", "pushed")
        ]
        watch.close()

    def test_empty_range_rejected(self, client):
        with pytest.raises(BadRequestError):
            client.iter_watch("p}", "p|")


@pytest.mark.parametrize("backend", BACKENDS)
class TestWatchAsync:
    """The async watch stream: exactly-once, ordered, range-true."""

    async def test_exactly_once_in_commit_order(self, backend):
        async with await _async_client(backend) as client:
            watch = await client.watch("p|", "p}")
            expected = []
            for i in range(10):
                key = f"p|u{i % 3}|{i:04d}"
                await client.put(key, f"v{i}")
                expected.append((key, f"v{i}"))
            await client.settle()
            events = watch.drain()
            assert [(e.key, e.new) for e in events] == expected
            # Exactly once: no duplicate (key, seq); versions ordered.
            stamps = [(e.key, e.seq) for e in events]
            assert len(set(stamps)) == len(stamps)
            per_key = {}
            for e in events:
                assert per_key.get(e.key, -1) < e.seq
                per_key[e.key] = e.seq
            await watch.close()

    async def test_unsubscribe_stops_push(self, backend):
        async with await _async_client(backend) as client:
            watch = await client.watch("p|", "p}")
            await client.put("p|a|1", "x")
            await client.settle()
            assert len(watch.drain()) == 1
            await watch.close()
            await client.put("p|a|2", "y")
            await client.settle()
            assert watch.drain() == []
            assert await watch.next_event(timeout=0.01) is None

    async def test_async_iteration(self, backend):
        async with await _async_client(backend) as client:
            watch = await client.watch("p|", "p}")
            for i in range(3):
                await client.put(f"p|a|{i}", f"v{i}")
            await client.settle()
            seen = []
            async for event in watch:
                seen.append(event.key)
                if len(seen) == 3:
                    break
            assert seen == ["p|a|0", "p|a|1", "p|a|2"]
            await watch.close()

    async def test_two_watches_independent_ranges(self, backend):
        async with await _async_client(backend) as client:
            wa = await client.watch("p|a|", "p|a}")
            wb = await client.watch("p|b|", "p|b}")
            await client.put("p|a|1", "x")
            await client.put("p|b|1", "y")
            await client.settle()
            assert [e.key for e in wa.drain()] == ["p|a|1"]
            assert [e.key for e in wb.drain()] == ["p|b|1"]
            await wa.close()
            await wb.close()


class TestNotFoundHierarchy:
    def test_not_found_is_client_and_key_error(self):
        """The wire-distinguishable "missing thing" error (the
        classify_error satellite): a ClientError for the unified
        hierarchy and a KeyError for idiomatic handling.  It is NOT a
        BadRequestError — missing is not malformed."""
        assert issubclass(NotFoundError, ClientError)
        assert issubclass(NotFoundError, KeyError)
        assert not issubclass(NotFoundError, BadRequestError)


# ----------------------------------------------------------------------
# Observability & load control: identical surface on every backend
# ----------------------------------------------------------------------
from repro.client import OverloadError  # noqa: E402
from repro.core.load import (  # noqa: E402
    OverloadError as CoreOverloadError,
    OverloadPolicy,
)


@pytest.fixture(params=BACKENDS)
def shed_client(request):
    """Every backend with a shed policy whose soft memory limit (one
    byte) trips on the first stored value — deterministic overload
    without reaching into server internals."""
    c = _sync_client(
        request.param,
        overload_policy=OverloadPolicy(mode="shed", soft_memory_limit=1),
    )
    yield c
    c.close()


class TestStatsSuperset:
    """stats() returns the metrics superset — raw counters plus the
    derived flat series — with the same key shapes on every backend."""

    def test_counters_and_derived_series_present(self, client):
        client.add_join(TIMELINE)
        client.put("s|ann|bob", "1")
        client.put("p|bob|0100", "hello")
        client.settle()
        client.scan_prefix("t|ann|")
        stats = client.stats()
        # Raw counter-bag entries pass through untouched.
        assert stats.get("op_put", 0) >= 2
        # Derived per-join series, Prometheus-style flat keys.
        assert any(
            k.startswith('join_validations_total{table="t"') for k in stats
        ), sorted(k for k in stats if k.startswith("join"))
        assert any(k.startswith("status_ranges{") for k in stats)
        assert any(k.startswith("table_memory_bytes{") for k in stats)
        assert stats.get("memory_bytes", 0) > 0

    def test_rpc_histograms_only_where_rpc_exists(self, client):
        client.put("p|a|1", "x")
        stats = client.stats()
        from repro.client import RemoteClient

        has_rpc_series = any(k.startswith("rpc_requests_total") for k in stats)
        # The RPC backend serves over TCP and must expose its frame
        # accounting; local and cluster have no RPC layer to account.
        assert has_rpc_series == isinstance(client, RemoteClient)


class TestOverloadConformance:
    """OverloadError classification is uniform: every backend raises
    the client-layer OverloadError, catchable both as a client-side
    ServerError and as the core OverloadError."""

    def test_shed_write_raises_typed_overload_error(self, shed_client):
        shed_client.put("p|a|1", "x")  # admitted: memory starts at zero
        with pytest.raises(OverloadError) as ei:
            shed_client.put("p|a|1", "now the server is over its limit")
        assert isinstance(ei.value, ServerError)
        assert isinstance(ei.value, CoreOverloadError)
        assert isinstance(ei.value, ClientError)

    def test_overload_is_not_a_bad_request(self, shed_client):
        shed_client.put("p|a|1", "x")
        with pytest.raises(OverloadError) as ei:
            shed_client.put("p|a|1", "y")
        assert not isinstance(ei.value, BadRequestError)
        assert not isinstance(ei.value, NotFoundError)

    def test_overload_gauge_reflects_state(self, shed_client):
        shed_client.put("p|a|1", "x")
        with pytest.raises(OverloadError):
            shed_client.put("p|a|1", "y")
        assert shed_client.stats().get("overloaded", 0) >= 1.0
