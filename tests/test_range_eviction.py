"""Eviction of the other two §2.5 data kinds: remote subscribed copies
and cached base data."""

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.backing import BackingDatabase, WriteAroundDeployment
from repro.distrib import Cluster


class TestCachedBaseEviction:
    def make(self):
        db = BackingDatabase()
        srv = PequodServer()
        srv.add_join(TIMELINE_JOIN)
        dep = WriteAroundDeployment(srv, db, base_tables={"p", "s"})
        dep.put("s|ann|bob", "1")
        dep.put("p|bob|0100", "cached row")
        dep.scan("t|ann|", "t|ann}")
        return dep, db, srv

    def test_base_ranges_tracked_in_lru(self):
        dep, db, srv = self.make()
        assert dep.resolver.ranges_loaded >= 2  # s range + p range

    def test_evicting_base_range_cancels_subscription(self):
        dep, db, srv = self.make()
        subs_before = db.hub.subscription_count()
        while srv.eviction.evict_one():
            pass
        assert dep.resolver.ranges_evicted >= 1
        assert db.hub.subscription_count() < subs_before

    def test_evicted_base_range_reloads_on_demand(self):
        dep, db, srv = self.make()
        while srv.eviction.evict_one():
            pass
        assert srv.store.get("p|bob|0100") is None
        # The next read refetches from the database transparently.
        assert dep.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "cached row")]

    def test_db_write_after_eviction_not_misapplied(self):
        dep, db, srv = self.make()
        while srv.eviction.evict_one():
            pass
        dep.put("p|bob|0200", "written while evicted")
        got = dep.scan("t|ann|", "t|ann}")
        assert ("t|ann|0200|bob", "written while evicted") in got

    def test_memory_limit_evicts_base_data(self):
        db = BackingDatabase()
        srv = PequodServer(memory_limit=25_000)
        srv.add_join(TIMELINE_JOIN)
        dep = WriteAroundDeployment(srv, db, base_tables={"p", "s"})
        for u in range(20):
            dep.put(f"s|u{u:02d}|star", "1")
        for t in range(20):
            dep.put(f"p|star|{t:04d}", "content " * 20)
        for u in range(20):
            dep.scan(f"t|u{u:02d}|", f"t|u{u:02d}}}")
        assert srv.memory_bytes() <= 25_000
        # Data is still correct after all that eviction.
        got = dep.scan("t|u00|", "t|u00}")
        assert len(got) == 20


class TestRemoteRangeEviction:
    def make(self):
        cluster = Cluster(2, 2, ("p", "s"), joins=TIMELINE_JOIN)
        cluster.put("s|ann|bob", "1")
        cluster.put("p|bob|0100", "mirrored")
        cluster.scan("ann", "t|ann|", "t|ann}")
        return cluster

    def test_remote_ranges_tracked(self):
        cluster = self.make()
        node = cluster.compute_node_for("ann")
        assert node.resolver.fetches >= 2

    def test_evicting_remote_range_unsubscribes(self):
        cluster = self.make()
        node = cluster.compute_node_for("ann")
        subs_before = cluster.total_subscriptions()
        while node.server.eviction.evict_one():
            pass
        assert node.resolver.evicted_ranges >= 1
        assert cluster.total_subscriptions() < subs_before

    def test_evicted_remote_range_refetches(self):
        cluster = self.make()
        node = cluster.compute_node_for("ann")
        while node.server.eviction.evict_one():
            pass
        assert node.server.store.get("p|bob|0100") is None
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "mirrored")]

    def test_no_updates_delivered_after_unsubscribe(self):
        cluster = self.make()
        node = cluster.compute_node_for("ann")
        while node.server.eviction.evict_one():
            pass
        applied_before = node.updates_applied
        cluster.put("p|bob|0200", "post after eviction")
        cluster.settle()
        assert node.updates_applied == applied_before
        # Correctness recovers on the next read via refetch.
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert [v for _, v in got] == ["mirrored", "post after eviction"]
