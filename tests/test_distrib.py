"""Tests for distributed Pequod (paper §2.4, §5.5)."""

import pytest

from repro.distrib import Cluster, Partitioner
from repro.distrib.node import MSG_UPDATE

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)
BASE_TABLES = ("p", "s")


def make_cluster(bases=2, computes=2):
    return Cluster(bases, computes, BASE_TABLES, joins=TIMELINE)


class TestPartitioner:
    def test_home_is_stable(self):
        part = Partitioner(["p", "s"], ["b0", "b1", "b2"])
        assert part.home_of("p|bob|0100") == part.home_of("p|bob|0200")

    def test_non_base_tables_have_no_home(self):
        part = Partitioner(["p"], ["b0"])
        assert part.home_of("t|ann|1|bob") is None

    def test_partitions_spread(self):
        part = Partitioner(["p"], ["b0", "b1", "b2", "b3"])
        homes = {part.home_of(f"p|user{i}|x") for i in range(200)}
        assert len(homes) == 4

    def test_single_segment_range_maps_to_one_home(self):
        part = Partitioner(["p"], ["b0", "b1", "b2"])
        homes = part.homes_for_range("p", "p|bob|0100", "p|bob}")
        assert homes == [part.home_of("p|bob|x")]

    def test_cross_partition_range_maps_to_all(self):
        part = Partitioner(["p"], ["b0", "b1"])
        assert set(part.homes_for_range("p", "p|", "p}")) == {"b0", "b1"}

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            Partitioner(["p"], [])


class TestClusterBasics:
    def test_write_goes_to_home(self):
        cluster = make_cluster()
        cluster.put("p|bob|0100", "hi")
        home = cluster.home_node("p|bob|0100")
        assert home.server.store.get("p|bob|0100") == "hi"
        others = [n for n in cluster.base_nodes if n is not home]
        for other in others:
            assert other.server.store.get("p|bob|0100") is None

    def test_compute_affinity_stable(self):
        cluster = make_cluster()
        assert cluster.compute_node_for("ann") is cluster.compute_node_for("ann")

    def test_timeline_computed_on_compute_node(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.put("p|bob|0100", "hello")
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "hello")]

    def test_remote_fetch_installs_subscription(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        assert cluster.total_subscriptions() >= 1

    def test_remove_routed_to_home(self):
        cluster = make_cluster()
        cluster.put("p|bob|0100", "x")
        assert cluster.remove("p|bob|0100")
        assert not cluster.remove("p|bob|0100")


class TestAsyncPropagation:
    def test_update_propagates_after_settle(self):
        """§2.4: eventual consistency — updates are asynchronous."""
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        assert cluster.scan("ann", "t|ann|", "t|ann}") == []
        cluster.put("p|bob|0100", "async tweet")
        # The home has it; the compute node may not have heard yet.
        cluster.settle()
        got = cluster.scan("ann", "t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "async tweet")]

    def test_staleness_window_observable(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")  # warm: subscribed to p|bob
        cluster.put("p|bob|0100", "in flight")
        # Without settle() the compute node is allowed to be stale.
        compute = cluster.compute_node_for("ann")
        stale = compute.server.store.get("p|bob|0100")
        cluster.settle()
        fresh = cluster.scan("ann", "t|ann|", "t|ann}")
        assert stale is None
        assert ("t|ann|0100|bob", "in flight") in fresh

    def test_update_counts(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        cluster.put("p|bob|0100", "x")
        cluster.settle()
        total_sent = sum(n.updates_sent for n in cluster.base_nodes)
        total_applied = sum(n.updates_applied for n in cluster.compute_nodes)
        assert total_sent >= 1
        assert total_applied >= 1

    def test_removal_propagates(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.put("p|bob|0100", "x")
        cluster.scan("ann", "t|ann|", "t|ann}")
        cluster.remove("p|bob|0100")
        cluster.settle()
        assert cluster.scan("ann", "t|ann|", "t|ann}") == []


class TestReplication:
    def test_popular_data_replicated_to_readers(self):
        """§2.4: popular ranges replicate to the servers that read them."""
        cluster = Cluster(1, 4, BASE_TABLES, joins=TIMELINE)
        fans = [f"fan{i:02d}" for i in range(8)]
        for fan in fans:
            cluster.put(f"s|{fan}|star", "1")
        cluster.put("p|star|0001", "popular")
        for fan in fans:
            cluster.scan(fan, f"t|{fan}|", f"t|{fan}}}")
        # Every compute server that served a fan mirrors star's posts.
        mirrors = sum(
            1
            for n in cluster.compute_nodes
            if n.server.store.get("p|star|0001") is not None
        )
        assert mirrors == len(
            {cluster.compute_node_for(f).name for f in fans}
        )

    def test_duplication_costs_memory(self):
        """§2.4: storage capacity does not rise linearly with servers."""
        small = Cluster(1, 1, BASE_TABLES, joins=TIMELINE)
        large = Cluster(1, 4, BASE_TABLES, joins=TIMELINE)
        fans = [f"fan{i:02d}" for i in range(12)]
        for cluster in (small, large):
            for fan in fans:
                cluster.put(f"s|{fan}|star", "1")
            cluster.put("p|star|0001", "popular tweet " * 4)
            for fan in fans:
                cluster.scan(fan, f"t|{fan}|", f"t|{fan}}}")
            cluster.settle()
        assert large.compute_memory_bytes() > small.compute_memory_bytes()


class TestSession:
    def test_read_your_own_writes(self):
        """§2.4: single-server sessions see their own writes."""
        cluster = make_cluster()
        session = cluster.session("ann")
        session.put("s|ann|bob", "1")
        session.put("p|bob|0100", "my own post")
        got = session.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "my own post")]

    def test_forwarded_writes_reach_home(self):
        cluster = make_cluster()
        session = cluster.session("ann")
        session.put("p|bob|0100", "forwarded")
        cluster.settle()
        home = cluster.home_node("p|bob|0100")
        assert home.server.store.get("p|bob|0100") == "forwarded"


class TestTrafficAccounting:
    def test_subscription_traffic_measured(self):
        cluster = make_cluster()
        cluster.put("s|ann|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        cluster.put("p|bob|0100", "x")
        cluster.settle()
        frac = cluster.subscription_traffic_fraction()
        assert 0.0 < frac < 1.0
        assert MSG_UPDATE in cluster.net.kind_bytes
