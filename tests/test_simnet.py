"""Tests for the discrete-event network simulator."""

import pytest

from repro.net.simnet import SimError, SimHost, SimNetwork


class TestEventQueue:
    def test_schedule_order(self):
        net = SimNetwork()
        order = []
        net.schedule(0.3, lambda: order.append("c"))
        net.schedule(0.1, lambda: order.append("a"))
        net.schedule(0.2, lambda: order.append("b"))
        net.run_until_idle()
        assert order == ["a", "b", "c"]
        assert net.now() == pytest.approx(0.3)

    def test_fifo_for_simultaneous_events(self):
        net = SimNetwork()
        order = []
        for i in range(5):
            net.schedule(0.1, lambda i=i: order.append(i))
        net.run_until_idle()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        net = SimNetwork()
        seen = []

        def first():
            seen.append("first")
            net.schedule(0.1, lambda: seen.append("second"))

        net.schedule(0.1, first)
        net.run_until_idle()
        assert seen == ["first", "second"]
        assert net.now() == pytest.approx(0.2)

    def test_negative_delay_rejected(self):
        net = SimNetwork()
        with pytest.raises(SimError):
            net.schedule(-1, lambda: None)

    def test_run_for_stops_at_deadline(self):
        net = SimNetwork()
        seen = []
        net.schedule(0.5, lambda: seen.append("early"))
        net.schedule(2.0, lambda: seen.append("late"))
        net.run_for(1.0)
        assert seen == ["early"]
        assert net.now() == pytest.approx(1.0)
        net.run_until_idle()
        assert seen == ["early", "late"]


class TestMessaging:
    def test_send_and_deliver(self):
        net = SimNetwork()
        a = SimHost(net, "a")
        b = SimHost(net, "b")
        got = []
        b.on("hello", lambda src, body: got.append((src, body)))
        a.send("b", "hello", {"x": 1})
        assert got == []  # not delivered until the clock advances
        net.run_until_idle()
        assert got == [("a", {"x": 1})]

    def test_latency_and_bandwidth_model(self):
        net = SimNetwork(latency=0.010, bandwidth_bytes_per_sec=1000)
        a = SimHost(net, "a")
        b = SimHost(net, "b")
        b.on("data", lambda src, body: None)
        a.send("b", "data", None, size_bytes=500)
        net.run_until_idle()
        # 10ms latency + 500B at 1kB/s = 0.51s
        assert net.now() == pytest.approx(0.510)

    def test_unknown_destination(self):
        net = SimNetwork()
        a = SimHost(net, "a")
        with pytest.raises(SimError):
            a.send("ghost", "hello", None)

    def test_unknown_kind_raises_on_delivery(self):
        net = SimNetwork()
        a = SimHost(net, "a")
        SimHost(net, "b")
        a.send("b", "unhandled", None)
        with pytest.raises(SimError):
            net.run_until_idle()

    def test_duplicate_host_rejected(self):
        net = SimNetwork()
        SimHost(net, "a")
        with pytest.raises(SimError):
            SimHost(net, "a")


class TestAccounting:
    def test_traffic_counters(self):
        net = SimNetwork()
        a = SimHost(net, "a")
        b = SimHost(net, "b")
        b.on("m", lambda src, body: None)
        a.send("b", "m", "payload")
        net.run_until_idle()
        assert net.messages_sent == 1
        assert net.bytes_sent > 0
        assert net.link_messages[("a", "b")] == 1
        assert "m" in net.kind_bytes

    def test_account_without_delivery(self):
        net = SimNetwork()
        SimHost(net, "a")
        net.account("a", "x", "fetch", 1000)
        assert net.bytes_sent == 1000
        assert net.pending() == 0

    def test_kind_byte_breakdown(self):
        net = SimNetwork()
        SimHost(net, "a")
        net.account("a", "b", "client_op", 100)
        net.account("a", "b", "sub_update", 300)
        assert net.kind_bytes == {"client_op": 100, "sub_update": 300}
