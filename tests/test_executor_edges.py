"""Edge cases of join execution the basic tests don't reach.

Cross-timeline scans, whole-table scans, status-cover invariants under
churn, updater context compression, generation-based retirement, and
the §3.1 claim that "correct and minimal containing ranges are
generated in each case" for arbitrary range queries.
"""

from repro import PequodServer

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def twip(**kwargs):
    srv = PequodServer(**kwargs)
    srv.add_join(TIMELINE)
    return srv


class TestArbitraryRangeQueries:
    """§3.1: queries like [t|ann|100, t|bob|200) and [t|a, t|b)."""

    def setup_method(self):
        self.srv = twip()
        for user, poster in [("ann", "liz"), ("bob", "liz"), ("cat", "liz")]:
            self.srv.put(f"s|{user}|{poster}", "1")
        for t in ("0050", "0150", "0250"):
            self.srv.put(f"p|liz|{t}", f"tweet@{t}")

    def full_expected(self):
        out = []
        for user in ("ann", "bob", "cat"):
            for t in ("0050", "0150", "0250"):
                out.append((f"t|{user}|{t}|liz", f"tweet@{t}"))
        return sorted(out)

    def test_cross_timeline_scan(self):
        got = self.srv.scan("t|ann|0100", "t|bob|0200")
        expected = [
            (k, v)
            for k, v in self.full_expected()
            if "t|ann|0100" <= k < "t|bob|0200"
        ]
        assert got == expected

    def test_whole_table_scan(self):
        assert self.srv.scan("t|", "t}") == self.full_expected()

    def test_prefix_crossing_scan(self):
        got = self.srv.scan("t|a", "t|c")
        expected = [
            (k, v) for k, v in self.full_expected() if "t|a" <= k < "t|c"
        ]
        assert got == expected

    def test_results_stable_across_overlapping_scans(self):
        a = self.srv.scan("t|ann|", "t|ann}")
        self.srv.scan("t|", "t}")
        b = self.srv.scan("t|ann|", "t|ann}")
        assert a == b
        self.srv.engine.status["t"].check_disjoint_cover()

    def test_maintenance_after_wide_scan(self):
        self.srv.scan("t|", "t}")
        self.srv.put("p|liz|0300", "late")
        got = self.srv.scan("t|", "t}")
        assert sum(1 for k, _ in got if k.endswith("|liz") and "0300" in k) == 3


class TestStatusCoverInvariants:
    def test_cover_stays_disjoint_under_churn(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        for t in range(0, 100, 10):
            srv.put(f"p|bob|{t:04d}", str(t))
        # Overlapping scans at many offsets force splits and merges.
        for lo in range(0, 100, 7):
            srv.scan(f"t|ann|{lo:04d}", "t|ann}")
            srv.engine.status["t"].check_disjoint_cover()
        srv.remove("s|ann|bob")
        srv.scan("t|", "t}")
        srv.engine.status["t"].check_disjoint_cover()

    def test_gap_only_created_for_queried_ranges(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        ranges = srv.engine.status["t"].ranges()
        for sr in ranges:
            assert sr.lo >= "t|ann|"
            assert sr.hi <= "t|ann}"


class TestUpdaterInternals:
    def test_context_compression_drops_derivable_slots(self):
        """§3.2: context holds only slots the source key can't supply."""
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        p_updaters = [
            u
            for entry in srv.store.tables["p"].updaters.entries()
            for u in entry.payloads
        ]
        assert len(p_updaters) == 1
        # poster/time come from the p key; only user needs storing.
        assert set(p_updaters[0].context) == {"user"}

    def test_generation_retires_stale_updaters(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        old = [
            u
            for entry in srv.store.tables["p"].updaters.entries()
            for u in entry.payloads
        ][0]
        gen_before = old.generation
        srv.remove("s|ann|bob")  # complete invalidation
        srv.scan("t|ann|", "t|ann}")  # recompute bumps generation
        sr = srv.engine.status["t"].find("t|ann|0")
        assert sr is not None
        assert sr.generation == gen_before + 1

    def test_reinstall_refreshes_generation_in_place(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.scan("t|ann|", "t|ann}")
        # Invalidate + recompute: the same logical updater is refreshed
        # rather than duplicated.
        srv.remove("s|ann|bob")
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        entries = list(srv.store.tables["p"].updaters.entries())
        assert sum(len(e.payloads) for e in entries) == 1

    def test_multiple_joins_fire_from_one_write(self):
        srv = PequodServer()
        srv.add_join("a|<x>|<y> = copy base|<x>|<y>")
        srv.add_join("b|<y>|<x> = copy base|<x>|<y>")
        srv.scan("a|", "a}")
        srv.scan("b|", "b}")
        srv.put("base|1|2", "v")
        assert srv.store.get("a|1|2") == "v"
        assert srv.store.get("b|2|1") == "v"


class TestGetPaths:
    def test_get_creates_minimal_status_range(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        assert srv.get("t|ann|0100|bob") == "x"
        ranges = srv.engine.status["t"].ranges()
        assert len(ranges) == 1
        assert ranges[0].hi.startswith("t|ann|0100|bob")

    def test_get_then_scan_composes(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.put("p|bob|0200", "y")
        assert srv.get("t|ann|0100|bob") == "x"
        got = srv.scan("t|ann|", "t|ann}")
        assert [v for _, v in got] == ["x", "y"]
        srv.engine.status["t"].check_disjoint_cover()

    def test_repeated_get_uses_cached_range(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "x")
        srv.get("t|ann|0100|bob")
        executed = srv.stats.get("joins_executed")
        srv.get("t|ann|0100|bob")
        assert srv.stats.get("joins_executed") == executed


class TestEmptyAndDegenerate:
    def test_scan_empty_server_with_join(self):
        srv = twip()
        assert srv.scan("t|", "t}") == []

    def test_inverted_range(self):
        srv = twip()
        assert srv.scan("t|z", "t|a") == []

    def test_join_over_missing_sources(self):
        srv = twip()
        srv.put("s|ann|ghost", "1")  # follows someone who never posts
        assert srv.scan("t|ann|", "t|ann}") == []
        srv.put("p|ghost|0001", "first ever")
        assert srv.scan("t|ann|", "t|ann}") == [
            ("t|ann|0001|ghost", "first ever")
        ]

    def test_value_with_separator_characters(self):
        srv = twip()
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "value|with|separators}and{braces")
        got = srv.scan("t|ann|", "t|ann}")
        assert got[0][1] == "value|with|separators}and{braces"
