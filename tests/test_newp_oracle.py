"""Property-based oracle for Newp: rendered pages always equal the
brute-force relational answer, in both join layouts, after arbitrary
op sequences."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.newp import ArticlePage, NewpApp

authors = st.sampled_from(["bob", "liz"])
article_ids = st.sampled_from(["a1", "a2"])
users = st.sampled_from(["ann", "jim", "kay"])

newp_ops = st.lists(
    st.one_of(
        st.tuples(st.just("article"), authors, article_ids),
        st.tuples(st.just("comment"), authors, article_ids, users,
                  st.integers(0, 99)),
        st.tuples(st.just("vote"), authors, article_ids,
                  st.integers(0, 99)),
        st.tuples(st.just("read"), authors, article_ids),
    ),
    min_size=1,
    max_size=40,
)


def brute_force_page(state, author, aid):
    """The relational answer for one article page."""
    page = ArticlePage(author, aid)
    page.text = state["articles"].get((author, aid))
    page.votes = len(state["votes"].get((author, aid), set()))
    karma = {}
    for (a, _), voters in state["votes"].items():
        karma[a] = karma.get(a, 0) + len(voters)
    # Comments are identified by (cid, commenter) — the commenter is
    # part of the stored key, so the same cid by another user is a
    # distinct comment, while re-commenting overwrites the text.
    for (a, i, cid, commenter), text in sorted(state["comments"].items()):
        if (a, i) == (author, aid):
            page.comments.append((cid, commenter, text))
            if karma.get(commenter):
                page.karma[commenter] = karma[commenter]
    return page


class TestNewpOracle:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(newp_ops, st.booleans())
    def test_pages_match_bruteforce(self, ops, interleaved):
        app = NewpApp(interleaved=interleaved)
        state = {"articles": {}, "comments": {}, "votes": {}}
        for op in ops:
            if op[0] == "article":
                _, author, aid = op
                text = f"article {author}/{aid}"
                app.author_article(author, aid, text)
                state["articles"][(author, aid)] = text
            elif op[0] == "comment":
                _, author, aid, commenter, n = op
                cid = f"c{n:03d}"
                text = f"comment {n}"
                app.comment(author, aid, cid, commenter, text)
                state["comments"][(author, aid, cid, commenter)] = text
            elif op[0] == "vote":
                _, author, aid, n = op
                voter = f"v{n:03d}"
                app.vote(author, aid, voter)
                state["votes"].setdefault((author, aid), set()).add(voter)
            else:
                _, author, aid = op
                app.read_article(author, aid)  # interleave reads
        for author in ("bob", "liz"):
            for aid in ("a1", "a2"):
                got = app.read_article(author, aid)
                expected = brute_force_page(state, author, aid)
                assert got == expected, f"{author}/{aid} ({interleaved=})"
