"""Tests for the §4 optimizations: subtables, output hints, value sharing."""

from repro import PequodServer, SharedValue

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def run_twip_workload(srv, followers=8, posts=12):
    if not srv.joins:
        srv.add_join(TIMELINE)
    users = [f"u{i:02d}" for i in range(followers)]
    for u in users:
        srv.put(f"s|{u}|star", "1")
    for u in users:
        srv.scan(f"t|{u}|", f"t|{u}}}")
    for t in range(posts):
        srv.put(f"p|star|{t:04d}", f"tweet number {t}")
    for u in users:
        srv.scan(f"t|{u}|", f"t|{u}}}")
    return srv


class TestOutputHints:
    def test_hints_hit_on_timeline_appends(self):
        """§4.2: sequential timeline appends reuse the output hint."""
        srv = run_twip_workload(PequodServer(enable_hints=True))
        assert srv.stats.get("hint_hits") > 0

    def test_hints_disabled_no_hits(self):
        srv = run_twip_workload(PequodServer(enable_hints=False))
        assert srv.stats.get("hint_hits") == 0

    def test_same_results_with_and_without_hints(self):
        a = run_twip_workload(PequodServer(enable_hints=True))
        b = run_twip_workload(PequodServer(enable_hints=False))
        assert a.scan("t|", "t}") == b.scan("t|", "t}")

    def test_hints_reduce_tree_descent_cost(self):
        a = run_twip_workload(PequodServer(enable_hints=True))
        b = run_twip_workload(PequodServer(enable_hints=False))
        assert a.stats.get("tree_descent_cost") < b.stats.get("tree_descent_cost")

    def test_hint_survives_aggregate_overwrites(self):
        """Counts repeatedly update the same key — the other O(1) case."""
        srv = PequodServer(enable_hints=True)
        srv.add_join("karma|<a> = count vote|<a>|<id>|<v>")
        srv.put("vote|bob|1|x", "1")
        srv.get("karma|bob")
        for i in range(10):
            srv.put(f"vote|bob|{i + 2}|x", "1")
        assert srv.get("karma|bob") == "11"


class TestValueSharing:
    def test_copies_share_one_buffer(self):
        """§4.3: timeline copies of one tweet share the value."""
        srv = run_twip_workload(PequodServer(enable_sharing=True))
        raw = srv.store.get_raw("t|u00|0000|star")
        assert isinstance(raw, SharedValue)
        assert raw.refs >= 8  # one per follower, plus the source

    def test_sharing_disabled_stores_strings(self):
        srv = run_twip_workload(PequodServer(enable_sharing=False))
        raw = srv.store.get_raw("t|u00|0000|star")
        assert isinstance(raw, str)

    def test_sharing_reduces_memory(self):
        """The paper reports a 1.14x reduction on Twip."""
        shared = run_twip_workload(PequodServer(enable_sharing=True))
        unshared = run_twip_workload(PequodServer(enable_sharing=False))
        assert shared.memory_bytes() < unshared.memory_bytes()

    def test_same_results_with_and_without_sharing(self):
        a = run_twip_workload(PequodServer(enable_sharing=True))
        b = run_twip_workload(PequodServer(enable_sharing=False))
        assert a.scan("t|", "t}") == b.scan("t|", "t}")

    def test_shared_value_released_on_removal(self):
        srv = PequodServer(enable_sharing=True)
        srv.add_join(TIMELINE)
        srv.put("s|ann|star", "1")
        srv.put("s|bob|star", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.scan("t|bob|", "t|bob}")
        srv.put("p|star|0001", "shared tweet")
        raw = srv.store.get_raw("p|star|0001")
        assert isinstance(raw, SharedValue)
        assert raw.refs == 3
        srv.remove("p|star|0001")  # eager removal retracts both copies
        assert raw.refs == 0


class TestSubtables:
    def test_subtable_server_matches_flat_server(self):
        flat = run_twip_workload(PequodServer())
        sub = run_twip_workload(PequodServer(subtable_config={"t": 2, "p": 2, "s": 2}))
        assert flat.scan("t|", "t}") == sub.scan("t|", "t}")

    def test_subtables_create_per_timeline_trees(self):
        srv = run_twip_workload(PequodServer(subtable_config={"t": 2}))
        assert srv.store.tables["t"].subtable_count() == 8

    def test_subtables_reduce_descent_cost_at_scale(self):
        flat = run_twip_workload(PequodServer(), followers=30, posts=30)
        sub = run_twip_workload(
            PequodServer(subtable_config={"t": 2, "p": 2, "s": 2}),
            followers=30,
            posts=30,
        )
        assert (
            sub.stats.get("tree_descent_cost")
            < flat.stats.get("tree_descent_cost")
        )

    def test_subtables_increase_memory(self):
        """§4.1: subtables trade memory (1.17x in the paper) for speed."""
        flat = run_twip_workload(PequodServer())
        sub = run_twip_workload(PequodServer(subtable_config={"t": 2}))
        assert sub.memory_bytes() > flat.memory_bytes()


class TestUpdaterCombining:
    def test_same_range_updaters_share_entry(self):
        """§3.2: a user's posts get one combined updater per range."""
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|star", "1")
        srv.put("s|bob|star", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.scan("t|bob|", "t|bob}")
        p_updaters = srv.store.tables["p"].updaters
        # Two different contexts (ann, bob) on the same p|star| range.
        assert len(p_updaters) == 1
        assert p_updaters.payload_count() == 2

    def test_reread_does_not_duplicate_updaters(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|star", "1")
        srv.scan("t|ann|", "t|ann}")
        count = srv.stats.get("updaters_installed")
        srv.scan("t|ann|", "t|ann}")
        srv.scan("t|ann|", "t|ann}")
        assert srv.stats.get("updaters_installed") == count
