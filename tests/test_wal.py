"""The persistence primitives: WAL framing, bloom filters, segments.

Each layer is tested against its own durability contract — the WAL's
torn-tail tolerance (any prefix of a crash is recoverable to the last
intact record), the bloom filter's one-sided error (no false negatives,
bounded false positives), and the segment file's structural validation
(corruption is detected before data is trusted).
"""

import os
import random
import struct

import pytest

from repro.persist.bloom import BloomFilter
from repro.persist.manager import SegmentStack
from repro.persist.segment import (
    CorruptSegment,
    MAGIC,
    SegmentReader,
    write_segment,
)
from repro.persist.wal import (
    FSYNC_MODES,
    WAL_HEADER_SIZE,
    WriteAheadLog,
    scan_wal,
)
from repro.store.stats import StoreStats


class TestWriteAheadLog:
    def test_roundtrip_records(self, tmp_path):
        path = str(tmp_path / "test.wal")
        wal = WriteAheadLog(path)
        wal.append(["a|1", "a|2"], ["x", "y"])
        wal.append(["b|1"], [None])  # a remove
        wal.close()
        records, offset, torn = scan_wal(path)
        assert records == [(["a|1", "a|2"], ["x", "y"]), (["b|1"], [None])]
        assert offset == os.path.getsize(path)
        assert not torn

    def test_missing_file_is_empty_log(self, tmp_path):
        records, offset, torn = scan_wal(str(tmp_path / "absent.wal"))
        assert (records, offset, torn) == ([], 0, False)

    def test_every_fsync_mode_is_readable(self, tmp_path):
        for mode in FSYNC_MODES:
            path = str(tmp_path / f"{mode}.wal")
            wal = WriteAheadLog(path, fsync=mode)
            wal.append(["k|1"], ["v"])
            wal.close()
            records, _, torn = scan_wal(path)
            assert records == [(["k|1"], ["v"])] and not torn, mode

    def test_unknown_fsync_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "x.wal"), fsync="sometimes")

    def test_torn_tail_truncated_mid_record(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = WriteAheadLog(path)
        wal.append(["a|1"], ["first"])
        wal.append(["a|2"], ["second"])
        wal.close()
        size = os.path.getsize(path)
        # Cut into the second record's body: the first must survive.
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        records, offset, torn = scan_wal(path)
        assert records == [(["a|1"], ["first"])]
        assert torn
        assert 0 < offset < size - 3

    def test_corrupt_crc_stops_the_scan(self, tmp_path):
        path = str(tmp_path / "crc.wal")
        wal = WriteAheadLog(path)
        wal.append(["a|1"], ["good"])
        wal.append(["a|2"], ["flipped"])
        wal.close()
        with open(path, "r+b") as fh:
            data = fh.read()
            # Flip a byte inside the second record's payload.
            first_len = struct.unpack_from(">I", data, 0)[0]
            victim = WAL_HEADER_SIZE * 2 + first_len + 2
            fh.seek(victim)
            fh.write(bytes([data[victim] ^ 0xFF]))
        records, _, torn = scan_wal(path)
        assert records == [(["a|1"], ["good"])]
        assert torn

    def test_always_mode_survives_simulated_crash(self, tmp_path):
        path = str(tmp_path / "crash.wal")
        wal = WriteAheadLog(path, fsync="always")
        for i in range(5):
            wal.append([f"k|{i}"], [str(i)])
        assert wal.simulate_crash() == 0  # every record was fsynced
        records, _, torn = scan_wal(path)
        assert len(records) == 5 and not torn

    def test_off_mode_crash_loses_unsynced_tail(self, tmp_path):
        path = str(tmp_path / "lossy.wal")
        wal = WriteAheadLog(path, fsync="off")
        for i in range(5):
            wal.append([f"k|{i}"], [str(i)])
        assert wal.simulate_crash() > 0
        records, _, torn = scan_wal(path)
        assert records == [] and not torn  # clean truncation, no tear

    def test_reset_empties_the_log(self, tmp_path):
        path = str(tmp_path / "reset.wal")
        wal = WriteAheadLog(path)
        wal.append(["k|1"], ["v"])
        wal.reset()
        assert wal.size == 0 and wal.records == 0
        wal.append(["k|2"], ["w"])
        wal.close()
        records, _, _ = scan_wal(path)
        assert records == [(["k|2"], ["w"])]

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = str(tmp_path / "reopen.wal")
        wal = WriteAheadLog(path)
        wal.append(["k|1"], ["v"])
        wal.close()
        wal = WriteAheadLog(path)
        wal.append(["k|2"], ["w"])
        wal.close()
        records, _, _ = scan_wal(path)
        assert [r[0] for r in records] == [["k|1"], ["k|2"]]

    def test_batch_mode_syncs_on_interval(self, tmp_path):
        stats = StoreStats()
        wal = WriteAheadLog(
            str(tmp_path / "b.wal"),
            fsync="batch",
            sync_interval_bytes=64,
            stats=stats,
        )
        for i in range(20):
            wal.append([f"key|{i:04d}"], ["x" * 16])
        assert stats.get("persist_wal_syncs") > 0
        assert wal.synced_size <= wal.size
        wal.close()


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_items(1000)
        keys = [f"k|{i:05d}".encode() for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.for_items(2000, fp_rate=0.01)
        for i in range(2000):
            bloom.add(f"member|{i}".encode())
        hits = sum(
            1 for i in range(10_000) if f"absent|{i}".encode() in bloom
        )
        assert hits / 10_000 < 0.03  # ~1% target, generous slack

    def test_serialization_roundtrip(self):
        bloom = BloomFilter.for_items(100)
        for i in range(100):
            bloom.add(f"x{i}".encode())
        clone = BloomFilter.from_bytes(bloom.to_bytes())
        assert (clone.m, clone.k, clone.bits) == (bloom.m, bloom.k, bloom.bits)
        assert all(f"x{i}".encode() in clone for i in range(100))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter.for_items(10, fp_rate=1.5)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"abc")


class TestSegment:
    def pairs(self, n=300):
        return [(f"seg|{i:06d}", f"value-{i}") for i in range(n)]

    def test_point_reads(self, tmp_path):
        path = str(tmp_path / "a.seg")
        pairs = self.pairs()
        assert write_segment(path, pairs) == len(pairs)
        reader = SegmentReader(path)
        assert len(reader) == len(pairs)
        for key, value in random.Random(1).sample(pairs, 40):
            assert reader.get(key) == (True, value)
        assert reader.get("seg|999999") == (False, None)
        assert reader.get("aaa") == (False, None)  # before first restart key
        reader.close()

    def test_tombstones_read_back_as_none(self, tmp_path):
        path = str(tmp_path / "t.seg")
        write_segment(path, [("k|1", "x"), ("k|2", None), ("k|3", "z")])
        reader = SegmentReader(path)
        assert reader.get("k|2") == (True, None)
        assert list(reader.scan()) == [("k|1", "x"), ("k|2", None), ("k|3", "z")]
        reader.close()

    def test_range_scan_bounds(self, tmp_path):
        path = str(tmp_path / "r.seg")
        pairs = self.pairs(200)
        write_segment(path, pairs)
        reader = SegmentReader(path)
        got = list(reader.scan("seg|000050", "seg|000060"))
        assert got == pairs[50:60]
        assert list(reader.scan(None, "seg|000003")) == pairs[:3]
        assert list(reader.scan("seg|000198", None)) == pairs[198:]
        reader.close()

    def test_bloom_rejects_absent_keys(self, tmp_path):
        path = str(tmp_path / "b.seg")
        write_segment(path, self.pairs(500))
        reader = SegmentReader(path)
        assert reader.may_contain("seg|000123")
        misses = sum(
            1 for i in range(2000) if reader.may_contain(f"gone|{i}")
        )
        assert misses / 2000 < 0.05
        reader.close()

    def test_truncated_file_detected(self, tmp_path):
        path = str(tmp_path / "c.seg")
        write_segment(path, self.pairs(100))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 5)
        with pytest.raises(CorruptSegment):
            SegmentReader(path)

    def test_bad_magic_detected(self, tmp_path):
        path = str(tmp_path / "m.seg")
        write_segment(path, self.pairs(10))
        with open(path, "r+b") as fh:
            fh.write(b"NOTSEG")
        with pytest.raises(CorruptSegment):
            SegmentReader(path)

    def test_footer_corruption_detected(self, tmp_path):
        path = str(tmp_path / "f.seg")
        write_segment(path, self.pairs(50))
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 12)  # inside the footer, before the trailer
            fh.write(b"\xff\xff")
        with pytest.raises(CorruptSegment):
            SegmentReader(path)

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "x.seg")
        write_segment(path, self.pairs(10))
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        assert MAGIC == open(path, "rb").read(len(MAGIC))


class TestSegmentStack:
    def test_newest_segment_wins(self, tmp_path):
        stack = SegmentStack(str(tmp_path / "segs"))
        stack.push([("k|1", "old"), ("k|2", "keep")])
        stack.push([("k|1", "new")])
        assert stack.read("k|1") == (True, "new")
        assert stack.read("k|2") == (True, "keep")
        assert stack.read("k|3") == (False, None)
        stack.close()

    def test_tombstone_masks_older_value(self, tmp_path):
        stack = SegmentStack(str(tmp_path / "segs"))
        stack.push([("k|1", "alive")])
        stack.push([("k|1", None)])
        assert stack.read("k|1") == (True, None)
        assert dict(stack.iter_merged()) == {"k|1": None}
        stack.close()

    def test_unsorted_push_still_reads_correctly(self, tmp_path):
        stack = SegmentStack(str(tmp_path / "segs"))
        pairs = [(f"z|{i % 7}|{i:04d}", str(i)) for i in range(100)]
        stack.push(list(pairs))  # enumeration order != key order
        for key, value in pairs:
            assert stack.read(key) == (True, value)
        stack.close()

    def test_manifest_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "segs")
        stack = SegmentStack(directory)
        stack.push([("a|1", "x")])
        stack.push([("a|2", "y")])
        stack.close()
        reopened = SegmentStack(directory)
        assert len(reopened) == 2
        assert reopened.read("a|1") == (True, "x")
        reopened.push([("a|3", "z")])  # ids keep advancing, no collision
        assert reopened.read("a|3") == (True, "z")
        reopened.close()

    def test_compaction_merges_and_drops_tombstones(self, tmp_path):
        stats = StoreStats()
        stack = SegmentStack(str(tmp_path / "segs"), stats=stats)
        stack.push([("k|1", "v1"), ("k|2", "v2")])
        stack.push([("k|2", "v2b"), ("k|3", "v3")])
        stack.push([("k|1", None)])
        stack.compact()
        assert len(stack) == 1
        assert stack.read("k|1") == (False, None)  # tombstone dropped
        assert stack.read("k|2") == (True, "v2b")
        assert stack.record_count() == 2
        assert stats.get("persist_compactions") == 1
        # Old segment files are actually unlinked.
        files = [f for f in os.listdir(stack.directory) if f.endswith(".seg")]
        assert len(files) == 1
        stack.close()

    def test_threshold_triggers_compaction(self, tmp_path):
        stack = SegmentStack(str(tmp_path / "segs"), compact_threshold=3)
        for i in range(4):
            stack.push([(f"k|{i}", str(i))])
            stack.maybe_compact()
        assert len(stack) <= 3
        assert all(stack.read(f"k|{i}") == (True, str(i)) for i in range(4))
        stack.close()

    def test_read_counters_classify_probes(self, tmp_path):
        stats = StoreStats()
        stack = SegmentStack(str(tmp_path / "segs"), stats=stats)
        stack.push([(f"m|{i:04d}", "v") for i in range(500)])
        stack.read("m|0005")
        for i in range(200):
            stack.read(f"absent|{i}")
        probes = stats.get("persist_segment_probes")
        negatives = stats.get("persist_bloom_negatives")
        assert probes >= 201
        assert stats.get("persist_segment_hits") == 1
        assert negatives > 180  # bloom answers nearly every absent probe
        assert (
            negatives
            + stats.get("persist_bloom_false_positives")
            + stats.get("persist_segment_hits")
            == probes
        )
        stack.close()
