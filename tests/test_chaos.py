"""Fault-injection tests (the CI chaos lane, ``pytest -m chaos``).

Every test here injects a failure through :mod:`repro.chaos` and
asserts two things: the fault demonstrably fired (the injectors count),
and the system *recovered* — output converges to the no-fault oracle,
and any staleness served along the way stayed within the configured
bound."""

import asyncio
import time

import pytest

from repro import PequodServer
from repro.chaos import (
    RpcChaos,
    SlowMaintenance,
    kill_compute,
    net_drop_filter,
    net_latency,
)
from repro.core.load import MODE_DEGRADE, OverloadPolicy
from repro.distrib.cluster import Cluster
from repro.metrics import merge_snapshots, split_key
from repro.net.rpc_client import RpcClient
from repro.net.rpc_server import RpcServer
from repro.net.simnet import SimError, SimHost, SimNetwork

pytestmark = pytest.mark.chaos

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)
BASE_TABLES = ("p", "s")
STALENESS_BOUND = 5.0


# ======================================================================
# Kill a compute node mid-workload (the acceptance-criteria scenario)
# ======================================================================
class TestKillComputeNode:
    USERS = [f"u{i}" for i in range(8)]

    def _build(self):
        policy = OverloadPolicy(
            mode=MODE_DEGRADE, max_staleness=STALENESS_BOUND
        )
        cluster = Cluster(
            2, 3, BASE_TABLES, joins=TIMELINE,
            server_factory=lambda name: PequodServer(
                name=name, overload_policy=policy
            ),
        )
        oracle = PequodServer()
        oracle.add_join(TIMELINE)
        return cluster, oracle

    def _apply(self, cluster, oracle, key, value):
        cluster.put(key, value)
        oracle.put(key, value)

    def _timeline(self, store, user):
        return store.scan(f"t|{user}|", "t|" + user + "}")

    def _cluster_timeline(self, cluster, user):
        return cluster.scan(user, f"t|{user}|", "t|" + user + "}")

    def test_kill_mid_workload_recovers_with_bounded_staleness(self):
        cluster, oracle = self._build()
        users = self.USERS
        for i, user in enumerate(users):
            self._apply(cluster, oracle, f"s|{user}|{users[(i + 1) % 8]}", "1")
            self._apply(cluster, oracle, f"s|{user}|{users[(i + 3) % 8]}", "1")
        for i, user in enumerate(users):
            self._apply(cluster, oracle, f"p|{user}|{1000 + i:04d}", f"post {i}")
        cluster.settle()
        for user in users:
            self._cluster_timeline(cluster, user)  # warm every compute node

        # --- fault: the node serving u0 dies mid-workload ------------
        victim = kill_compute(cluster, affinity="u0")
        assert victim.name in cluster.dead
        assert victim not in cluster.live_compute_nodes
        assert len(cluster.live_compute_nodes) == 2

        # The workload continues: writes (routed to base homes) land,
        # follow churn leaves lazy pending work, and reads rehash onto
        # the survivors.
        for i, user in enumerate(users):
            self._apply(cluster, oracle, f"p|{user}|{2000 + i:04d}", f"late {i}")
        self._apply(cluster, oracle, "s|u0|u5", "1")
        survivors = cluster.live_compute_nodes
        for node in survivors:
            node.server.load.force("post-kill burst")
        for user in users:
            rows = self._cluster_timeline(cluster, user)
            assert rows  # degraded reads still answer
        for node in survivors:
            node.server.load.force(None)

        # --- recovery: converge and match the never-failed oracle ----
        cluster.settle()
        for user in users:
            assert self._cluster_timeline(cluster, user) == self._timeline(
                oracle, user
            ), f"timeline {user} diverged after node kill"

        # --- staleness stayed within the configured bound -------------
        merged = merge_snapshots(
            node.server.metrics_snapshot()
            for node in cluster.nodes
            if node.name not in cluster.dead
        )
        ages = {
            key: value
            for key, value in merged.items()
            if split_key(key)[0] == "join_stale_age_max_seconds"
        }
        assert ages, "expected stale-age series on the surviving computes"
        for key, age in ages.items():
            assert age <= STALENESS_BOUND, f"{key} = {age}"

    def test_routing_rehashes_onto_survivors(self):
        cluster, _ = self._build()
        victim = cluster.compute_node_for("u0")
        cluster.kill_node(victim)
        replacement = cluster.compute_node_for("u0")
        assert replacement is not victim
        assert replacement.name not in cluster.dead

    def test_kill_drops_base_subscriptions(self):
        cluster, oracle = self._build()
        self._apply(cluster, oracle, "s|u0|u1", "1")
        self._apply(cluster, oracle, "p|u1|0100", "x")
        self._cluster_timeline(cluster, "u0")
        assert cluster.total_subscriptions() >= 1
        before = cluster.total_subscriptions()
        victim = cluster.compute_node_for("u0")
        cluster.kill_node(victim)
        assert cluster.total_subscriptions() < before

    def test_base_nodes_not_killable(self):
        cluster, _ = self._build()
        with pytest.raises(ValueError):
            cluster.kill_node(cluster.base_nodes[0])

    def test_cannot_kill_last_compute(self):
        cluster = Cluster(1, 1, BASE_TABLES, joins=TIMELINE)
        with pytest.raises(RuntimeError):
            cluster.kill_node(cluster.compute_nodes[0])

    def test_kill_idempotent_and_by_name(self):
        cluster, _ = self._build()
        victim = cluster.compute_nodes[0]
        assert cluster.kill_node(victim.name) is victim
        assert cluster.kill_node(victim) is victim  # already dead: no-op
        assert len(cluster.live_compute_nodes) == 2


# ======================================================================
# RPC frame chaos: delayed and dropped response frames
# ======================================================================
def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


async def with_server(fn):
    server = RpcServer(PequodServer())
    await server.start()
    client = RpcClient("127.0.0.1", server.port)
    await client.connect()
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.stop()


class TestRpcChaos:
    def test_dropped_frame_hangs_only_its_request(self):
        async def body(server, client):
            await client.put("x|1", "a")
            server.chaos = chaos = RpcChaos(drop_every=3)
            assert await client.call("get", "x|1") == "a"  # frame 1
            assert await client.call("get", "x|1") == "a"  # frame 2
            with pytest.raises(asyncio.TimeoutError):
                # frame 3: response dropped, future never resolves
                await asyncio.wait_for(client.call("get", "x|1"), 0.3)
            assert chaos.frames_dropped == 1
            server.chaos = None
            # Recovery: the connection still serves later requests,
            # and a fresh connection sees consistent data.
            assert await client.ping() == "pong"
            fresh = RpcClient("127.0.0.1", server.port)
            await fresh.connect()
            try:
                assert await fresh.call("get", "x|1") == "a"
            finally:
                await fresh.close()

        run(with_server(body))

    def test_delay_slows_but_completes(self):
        async def body(server, client):
            server.chaos = chaos = RpcChaos(delay_s=0.05)
            start = time.perf_counter()
            assert await client.ping() == "pong"
            assert time.perf_counter() - start >= 0.05
            assert chaos.chunks_delayed >= 1
            assert chaos.frames_dropped == 0

        run(with_server(body))

    def test_invalid_injector_args_rejected(self):
        with pytest.raises(ValueError):
            RpcChaos(delay_s=-1)
        with pytest.raises(ValueError):
            RpcChaos(drop_every=-1)


# ======================================================================
# Slow maintenance: the join engine's write path stalls
# ======================================================================
class TestSlowMaintenance:
    def test_stalls_counted_and_limited(self):
        server = PequodServer()
        server.add_join(TIMELINE)
        sm = SlowMaintenance(0.0, limit=2).install(server.engine)
        for i in range(5):
            server.put(f"p|bob|{i:04d}", "x")
        assert sm.stalls == 2  # the limit bounds the injected burst

    def test_stall_actually_blocks(self):
        server = PequodServer()
        SlowMaintenance(0.02, limit=1).install(server.engine)
        start = time.perf_counter()
        server.put("p|bob|0001", "x")
        assert time.perf_counter() - start >= 0.02
        # Recovered: later writes are not stalled.
        start = time.perf_counter()
        server.put("p|bob|0002", "y")
        assert time.perf_counter() - start < 0.02

    def test_uninstall(self):
        server = PequodServer()
        sm = SlowMaintenance(0.0).install(server.engine)
        server.put("p|a|1", "x")
        assert sm.stalls == 1
        SlowMaintenance.uninstall(server.engine)
        server.put("p|a|2", "y")
        assert sm.stalls == 1

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            SlowMaintenance(-0.1)


# ======================================================================
# Simulated-network faults: partitions, latency, targeted loss
# ======================================================================
class TestSimnetChaos:
    def _host(self, net, name):
        host = SimHost(net, name)
        seen = []
        host.on("k", lambda src, body: seen.append(body))
        return host, seen

    def test_in_flight_messages_vanish_with_killed_host(self):
        net = SimNetwork()
        _, seen = self._host(net, "dst")
        self._host(net, "src")
        net.send("src", "dst", "k", "in flight")
        net.kill_host("dst")  # after send, before delivery
        net.run_until_idle()
        assert seen == []
        assert net.messages_dropped == 1

    def test_send_to_down_host_dropped_at_source(self):
        net = SimNetwork()
        _, seen = self._host(net, "dst")
        self._host(net, "src")
        net.kill_host("dst")
        net.send("src", "dst", "k", "x")
        net.run_until_idle()
        assert seen == []
        assert net.messages_dropped == 1

    def test_revive_restores_delivery(self):
        net = SimNetwork()
        _, seen = self._host(net, "dst")
        self._host(net, "src")
        net.kill_host("dst")
        net.revive_host("dst")
        net.send("src", "dst", "k", "back")
        net.run_until_idle()
        assert seen == ["back"]

    def test_kill_unknown_host_rejected(self):
        with pytest.raises(SimError):
            SimNetwork().kill_host("ghost")

    def test_extra_latency_delays_delivery(self):
        net = SimNetwork()
        _, seen = self._host(net, "dst")
        self._host(net, "src")
        net_latency(net, 0.5)
        net.send("src", "dst", "k", "slow")
        net.run_for(0.25)
        assert seen == []  # still in flight
        net.run_until_idle()
        assert seen == ["slow"]
        with pytest.raises(ValueError):
            net_latency(net, -1)

    def test_drop_filter_targets_kinds(self):
        net = SimNetwork()
        host, seen = self._host(net, "dst")
        host.on("keep", lambda src, body: seen.append(body))
        self._host(net, "src")
        net_drop_filter(net, lambda src, dst, kind, body: kind == "k")
        net.send("src", "dst", "k", "lost")
        net.send("src", "dst", "keep", "kept")
        net.run_until_idle()
        assert seen == ["kept"]
        assert net.messages_dropped == 1
        net_drop_filter(net, None)
        net.send("src", "dst", "k", "now fine")
        net.run_until_idle()
        assert seen == ["kept", "now fine"]
