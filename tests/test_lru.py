"""Unit tests for the LRU range tracker."""

import pytest

from repro.store.lru import LRUList


class TestLRUOrdering:
    def test_add_and_pop_coldest(self):
        lru = LRUList()
        lru.add("a")
        lru.add("b")
        lru.add("c")
        assert len(lru) == 3
        assert lru.pop_coldest().payload == "a"
        assert lru.pop_coldest().payload == "b"
        assert len(lru) == 1

    def test_touch_reheats(self):
        lru = LRUList()
        ea = lru.add("a")
        lru.add("b")
        lru.touch(ea)
        assert lru.pop_coldest().payload == "b"
        assert lru.pop_coldest().payload == "a"

    def test_touch_tail_is_noop(self):
        lru = LRUList()
        lru.add("a")
        eb = lru.add("b")
        lru.touch(eb)
        assert [e.payload for e in lru] == ["a", "b"]

    def test_iteration_coldest_first(self):
        lru = LRUList()
        for name in ["a", "b", "c"]:
            lru.add(name)
        assert [e.payload for e in lru] == ["a", "b", "c"]

    def test_empty_pop(self):
        lru = LRUList()
        assert lru.pop_coldest() is None
        assert lru.coldest() is None
        assert not lru


class TestPinning:
    def test_pinned_entries_skipped(self):
        lru = LRUList()
        ea = lru.add("a")
        lru.add("b")
        ea.pinned = True
        assert lru.coldest().payload == "b"
        assert lru.pop_coldest().payload == "b"
        assert len(lru) == 1  # pinned entry remains

    def test_all_pinned_returns_none(self):
        lru = LRUList()
        lru.add("a").pinned = True
        assert lru.coldest() is None


class TestRemoval:
    def test_remove_middle(self):
        lru = LRUList()
        lru.add("a")
        eb = lru.add("b")
        lru.add("c")
        lru.remove(eb)
        assert [e.payload for e in lru] == ["a", "c"]
        assert not eb.linked()

    def test_remove_twice_is_safe(self):
        lru = LRUList()
        ea = lru.add("a")
        lru.remove(ea)
        lru.remove(ea)
        assert len(lru) == 0

    def test_touch_foreign_entry_raises(self):
        lru1, lru2 = LRUList(), LRUList()
        entry = lru1.add("a")
        with pytest.raises(ValueError):
            lru2.touch(entry)

    def test_removal_during_iteration(self):
        lru = LRUList()
        entries = [lru.add(i) for i in range(5)]
        for e in lru:
            if e.payload % 2 == 0:
                lru.remove(e)
        assert [e.payload for e in lru] == [1, 3]
        assert entries[0].linked() is False
