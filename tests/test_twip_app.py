"""Tests for the Twip application (§2.1, §2.3)."""

from repro.apps.social_graph import generate_graph
from repro.apps.twip import PequodTwipBackend, TwipApp, format_time


class TestTwipBasics:
    def test_post_and_timeline(self):
        app = TwipApp()
        app.subscribe("ann", "bob")
        app.post("bob", 100, "hello")
        assert app.timeline("ann") == [(format_time(100), "bob", "hello")]

    def test_timeline_since(self):
        app = TwipApp()
        app.subscribe("ann", "bob")
        for t in (100, 200, 300):
            app.post("bob", t, f"tweet{t}")
        got = app.timeline("ann", since=200)
        assert [time for time, _, _ in got] == [format_time(200), format_time(300)]

    def test_timeline_merges_posters_by_time(self):
        app = TwipApp()
        app.subscribe("ann", "bob")
        app.subscribe("ann", "liz")
        app.post("bob", 200, "second")
        app.post("liz", 100, "first")
        got = app.timeline("ann")
        assert [text for _, _, text in got] == ["first", "second"]

    def test_unsubscribe(self):
        app = TwipApp()
        app.subscribe("ann", "bob")
        app.post("bob", 100, "x")
        assert len(app.timeline("ann")) == 1
        app.unsubscribe("ann", "bob")
        assert app.timeline("ann") == []

    def test_load_graph(self):
        g = generate_graph(30, 4, seed=2)
        app = TwipApp()
        app.load_graph(g)
        user = g.users[0]
        followee = g.following[user][0] if g.following[user] else None
        if followee:
            app.post(followee, 50, "from a followee")
            assert len(app.timeline(user)) == 1


class TestCelebrityMode:
    def test_celebrity_posts_not_fanned_out(self):
        g = generate_graph(60, 6, seed=3)
        threshold = 2
        app = TwipApp(celebrity_threshold=threshold, graph=g)
        app.load_graph(g)
        celebs = g.celebrities(threshold)
        assert celebs, "graph should have celebrities at this threshold"
        celeb = max(celebs, key=g.follower_count)
        fan = g.followers[celeb][0]
        app.post(celeb, 100, "celebrity tweet")
        timeline = app.timeline(fan)
        assert (format_time(100), celeb, "celebrity tweet") in timeline
        # The tweet is served via the pull join, never copied into t|.
        assert app.server.store.count("t|", "t}") == 0 or all(
            poster != celeb
            for key, _ in app.server.store.scan("t|", "t}")
            for poster in [key.rsplit("|", 1)[1]]
        )

    def test_mixed_celebrity_and_normal_timeline(self):
        app = TwipApp(celebrity_threshold=10)
        app.mark_celebrity("star")
        app.subscribe("ann", "star")
        app.subscribe("ann", "bob")
        app.post("bob", 100, "normal")
        app.post("star", 150, "famous")
        got = app.timeline("ann")
        assert [text for _, _, text in got] == ["normal", "famous"]

    def test_celebrity_memory_savings(self):
        """§2.3: celebrity joins save memory, not necessarily time."""
        g = generate_graph(80, 8, seed=4)
        threshold = 3

        def run(app):
            app.load_graph(g)
            for i, user in enumerate(g.users):
                app.post(user, i, f"tweet from {user}")
            for user in g.users:
                app.timeline(user)
            return app.server.memory_bytes()

        plain = run(TwipApp())
        celeb_app = TwipApp(celebrity_threshold=threshold, graph=g)
        celeb = run(celeb_app)
        assert celeb < plain


class TestBackendAdapter:
    def test_backend_counts_one_rpc_per_op(self):
        backend = PequodTwipBackend()
        backend.subscribe("ann", "bob")
        backend.post("bob", format_time(10), "x")
        backend.timeline("ann", format_time(0))
        assert backend.meter.get("rpcs") == 3

    def test_backend_timeline_tuples(self):
        backend = PequodTwipBackend()
        backend.subscribe("ann", "bob")
        backend.post("bob", format_time(5), "hi")
        got = backend.timeline("ann", format_time(0))
        assert got == [(format_time(5), "bob", "hi")]
