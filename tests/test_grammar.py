"""Unit tests for the cache-join grammar (paper Figure 2)."""

import pytest

from repro.core.grammar import GrammarError, parse_join, parse_joins
from repro.core.joins import MaintenanceType


class TestBasicParsing:
    def test_timeline_join(self):
        j = parse_join(
            "t|<user>|<time>|<poster> = "
            "check s|<user>|<poster> copy p|<poster>|<time>"
        )
        assert j.output.text == "t|<user>|<time>|<poster>"
        assert [s.operator for s in j.sources] == ["check", "copy"]
        assert j.maintenance is MaintenanceType.PUSH
        assert j.value_index == 1

    def test_trailing_semicolon(self):
        j = parse_join("k|<a> = count v|<a>|<b>;")
        assert j.value_source.operator == "count"

    def test_explicit_push(self):
        j = parse_join("k|<a> = push copy v|<a>")
        assert j.maintenance is MaintenanceType.PUSH

    def test_pull_annotation(self):
        j = parse_join("k|<a> = pull copy v|<a>")
        assert j.maintenance is MaintenanceType.PULL

    def test_snapshot_annotation(self):
        j = parse_join("k|<a> = snapshot 30 copy v|<a>")
        assert j.maintenance is MaintenanceType.SNAPSHOT
        assert j.snapshot_interval == 30.0

    def test_snapshot_fractional(self):
        j = parse_join("k|<a> = snapshot 0.5 copy v|<a>")
        assert j.snapshot_interval == 0.5

    def test_multiple_joins(self):
        joins = parse_joins(
            "ct|<time>|<poster> = copy cp|<poster>|<time>;"
            "t|<u>|<time>|<poster> = check s|<u>|<poster> copy p|<poster>|<time>"
        )
        assert len(joins) == 2

    def test_comments_stripped(self):
        joins = parse_joins(
            "// the timeline join\n"
            "k|<a> = copy v|<a>; # another\n"
        )
        assert len(joins) == 1

    def test_newp_interleaved_figure1(self):
        """The Figure-1 join set parses with explicit slots."""
        joins = parse_joins(
            """
            karma|<author> = count vote|<author>|<id>|<voter>;
            rank|<author>|<id> = count vote|<author>|<id>|<voter>;
            page|<author>|<id>|a = copy article|<author>|<id>;
            page|<author>|<id>|r = copy rank|<author>|<id>;
            page|<author>|<id>|c|<cid>|<commenter> =
                copy comment|<author>|<id>|<cid>|<commenter>;
            page|<author>|<id>|k|<cid>|<commenter> =
                check comment|<author>|<id>|<cid>|<commenter>
                copy karma|<commenter>
            """
        )
        assert len(joins) == 6


class TestBareStyle:
    def test_paper_bare_timeline(self):
        """The paper's §2.2 syntax, with bare slot names."""
        j = parse_join(
            "t|user|time|poster = check s|user|poster copy p|poster|time"
        )
        assert j.output.text == "t|<user>|<time>|<poster>"
        assert j.sources[0].pattern.text == "s|<user>|<poster>"

    def test_bare_mode_not_mixed(self):
        # One explicit slot anywhere disables bare rewriting entirely.
        j = parse_join("t|<user> = copy p|<user>|x")
        assert j.sources[0].pattern.text == "p|<user>|x"  # x stays literal

    def test_bare_with_invalid_segment_rejected(self):
        with pytest.raises(GrammarError):
            parse_join("t|user-name = copy p|user-name")


class TestErrors:
    def test_missing_equals(self):
        with pytest.raises(GrammarError):
            parse_join("t|<a> copy v|<a>")

    def test_no_sources(self):
        with pytest.raises(GrammarError):
            parse_join("t|<a> = ")

    def test_odd_tokens(self):
        with pytest.raises(GrammarError):
            parse_join("t|<a> = copy")

    def test_unknown_operator(self):
        with pytest.raises(GrammarError):
            parse_join("t|<a> = grab v|<a>")

    def test_snapshot_without_interval(self):
        with pytest.raises(GrammarError):
            parse_join("t|<a> = snapshot copy v|<a>")

    def test_multiple_joins_where_one_expected(self):
        with pytest.raises(GrammarError):
            parse_join("a|<x> = copy b|<x>; c|<x> = copy d|<x>")

    def test_output_with_space(self):
        with pytest.raises(GrammarError):
            parse_join("t |<a> = copy v|<a>")

    def test_roundtrip_text(self):
        text = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
        j = parse_join(text)
        assert parse_join(j.text).text == j.text
