"""Unit tests for the value protocol and the stats counters."""

from repro.core.operators import AggValue
from repro.store.stats import StoreStats
from repro.store.values import (
    POINTER_SIZE,
    SharedValue,
    acquire_value,
    materialize,
    release_value,
)


class TestValueProtocol:
    def test_materialize_str(self):
        assert materialize("plain") == "plain"

    def test_materialize_shared(self):
        assert materialize(SharedValue("buf")) == "buf"

    def test_materialize_agg(self):
        acc = AggValue("count")
        acc.include("x")
        assert materialize(acc) == "1"

    def test_str_accounting_is_length(self):
        assert acquire_value("abcd") == 4
        assert release_value("abcd") == 4

    def test_shared_first_ref_charges_payload(self):
        shared = SharedValue("x" * 100)
        assert acquire_value(shared) == 100 + POINTER_SIZE
        assert acquire_value(shared) == POINTER_SIZE
        assert shared.refs == 2

    def test_shared_last_release_refunds_payload(self):
        shared = SharedValue("x" * 100)
        acquire_value(shared)
        acquire_value(shared)
        assert release_value(shared) == POINTER_SIZE
        assert release_value(shared) == 100 + POINTER_SIZE
        assert shared.refs == 0

    def test_agg_accounting_fixed(self):
        acc = AggValue("sum")
        assert acquire_value(acc) == acc.memory_size()
        assert release_value(acc) == acc.memory_size()

    def test_shared_equality(self):
        assert SharedValue("a") == SharedValue("a")
        assert SharedValue("a") == "a"
        assert SharedValue("a") != SharedValue("b")
        assert len({SharedValue("a"), SharedValue("a")}) == 1


class TestStoreStats:
    def test_add_and_get(self):
        stats = StoreStats()
        stats.add("x")
        stats.add("x", 2.5)
        assert stats.get("x") == 3.5
        assert stats["x"] == 3.5
        assert stats.get("missing") == 0.0

    def test_tree_descent_accumulates_log_cost(self):
        stats = StoreStats()
        stats.tree_descent(0)
        stats.tree_descent(1000)
        assert stats.get("tree_descents") == 2
        assert stats.get("tree_descent_cost") > 10  # log2(2) + log2(1002)

    def test_snapshot_is_independent_copy(self):
        stats = StoreStats()
        stats.add("a")
        snap = stats.snapshot()
        stats.add("a")
        assert snap["a"] == 1.0
        assert stats.get("a") == 2.0

    def test_reset(self):
        stats = StoreStats()
        stats.add("a")
        stats.reset()
        assert stats.get("a") == 0.0

    def test_merged_with(self):
        a, b = StoreStats(), StoreStats()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        merged = a.merged_with(b)
        assert merged.get("x") == 3
        assert merged.get("y") == 5
        assert a.get("x") == 1  # originals untouched

    def test_items_sorted(self):
        stats = StoreStats()
        stats.add("zeta")
        stats.add("alpha")
        assert [k for k, _ in stats.items()] == ["alpha", "zeta"]
