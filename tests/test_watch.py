"""Watch streams end to end: the ChangeHub, the RPC push protocol,
per-connection teardown, and the windowed pipelining driver."""

import asyncio

import pytest

from repro import PequodServer
from repro.core.hub import ChangeHub
from repro.core.operators import ChangeKind
from repro.net import protocol
from repro.net.rpc_client import RpcClient, RpcError
from repro.net.rpc_server import RpcServer, classify_error


def run(coro):
    return asyncio.run(coro)


# ======================================================================
# ChangeHub
# ======================================================================
class TestChangeHub:
    def test_publish_reaches_covering_watchers_only(self):
        hub = ChangeHub()
        got_a, got_b = [], []
        hub.watch("p|a|", "p|a}", got_a.append)
        hub.watch("p|", "p}", got_b.append)
        assert hub.publish("p|a|1", None, "x", ChangeKind.INSERT) == 2
        assert hub.publish("p|b|1", None, "y", ChangeKind.INSERT) == 1
        assert hub.publish("q|1", None, "z", ChangeKind.INSERT) == 0
        assert [e.key for e in got_a] == ["p|a|1"]
        assert [e.key for e in got_b] == ["p|a|1", "p|b|1"]

    def test_seq_strictly_increases(self):
        hub = ChangeHub()
        events = []
        hub.watch("a", "z", events.append)
        for i in range(5):
            hub.publish(f"k{i}", None, "v", ChangeKind.INSERT)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_close_stops_delivery_and_counts(self):
        hub = ChangeHub()
        events = []
        handle = hub.watch("a", "z", events.append)
        assert hub.watcher_count() == 1
        hub.publish("k", None, "v", ChangeKind.INSERT)
        handle.close()
        handle.close()  # idempotent
        assert hub.watcher_count() == 0
        hub.publish("k", None, "v2", ChangeKind.UPDATE)
        assert len(events) == 1

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            ChangeHub().watch("z", "a", lambda e: None)

    def test_server_hub_is_lazy(self):
        server = PequodServer()
        assert server._hub is None
        server.put("p|a|1", "x")  # no hub, no listener overhead
        assert server._hub is None
        events = []
        server.watch("p|", "p}", events.append)
        server.put("p|a|2", "y")
        assert [e.key for e in events] == ["p|a|2"]


# ======================================================================
# Error classification (the NotFoundError satellite)
# ======================================================================
class TestClassifyError:
    def test_key_error_is_not_found(self):
        assert classify_error(KeyError("gone")) == protocol.ERR_CODE_NOT_FOUND

    def test_value_error_is_bad_request(self):
        assert classify_error(ValueError("bad")) == protocol.ERR_CODE_BAD_REQUEST
        assert classify_error(TypeError("bad")) == protocol.ERR_CODE_BAD_REQUEST

    def test_fault_is_server(self):
        assert classify_error(RuntimeError("boom")) == protocol.ERR_CODE_SERVER

    def test_not_found_maps_to_typed_error(self):
        from repro.client.errors import NotFoundError, error_for_code

        exc = error_for_code(protocol.ERR_CODE_NOT_FOUND, "no subscription 7")
        assert isinstance(exc, NotFoundError)
        assert isinstance(exc, KeyError)  # idiomatic handling
        assert "no subscription 7" in str(exc)


# ======================================================================
# RPC push protocol
# ======================================================================
async def with_server(fn):
    server = RpcServer(PequodServer())
    await server.start()
    client = RpcClient("127.0.0.1", server.port)
    await client.connect()
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.stop()


class TestRpcPush:
    def test_push_frames_interleave_with_responses(self):
        async def body(server, client):
            events = []
            sub_id = await client.subscribe("p|", "p}")
            client.set_push_sink(
                sub_id, lambda evs: events.extend(evs or [])
            )
            # Pipelined writes: pushes ride the same connection as the
            # responses, with reserved negative frame ids.
            await client.call_many(
                [("put", [f"p|a|{i}", f"v{i}"]) for i in range(5)]
            )
            await client.call("ping")  # one more round trip: pushes read
            assert [e.key for e in events] == [f"p|a|{i}" for i in range(5)]
            assert client.pushes_received == 5
            assert await client.unsubscribe(sub_id) is True

        run(with_server(body))

    def test_cross_connection_push(self):
        """The §2.4 model: a write on one connection is pushed to a
        watcher on another."""

        async def body(server, client):
            writer = RpcClient("127.0.0.1", server.port)
            await writer.connect()
            try:
                events = []
                sub_id = await client.subscribe("p|", "p}")
                client.set_push_sink(
                    sub_id, lambda evs: events.extend(evs or [])
                )
                await writer.put("p|x|1", "from the other side")
                await client.call("ping")  # pump our connection
                assert [(e.key, e.new) for e in events] == [
                    ("p|x|1", "from the other side")
                ]
            finally:
                await writer.close()

        run(with_server(body))

    def test_unsubscribe_unknown_id_is_not_found(self):
        async def body(server, client):
            with pytest.raises(RpcError) as info:
                await client.call("unsubscribe", 999)
            assert info.value.code == protocol.ERR_CODE_NOT_FOUND
            # The connection stays usable.
            assert await client.ping() == "pong"

        run(with_server(body))

    def test_bad_subscribe_range_is_bad_request(self):
        async def body(server, client):
            with pytest.raises(RpcError) as info:
                await client.call("subscribe", "z", "a")
            assert info.value.code == protocol.ERR_CODE_BAD_REQUEST

        run(with_server(body))


class TestConnectionTeardown:
    """The satellite fix: whatever ends a connection, its watch
    subscriptions, buffers, and task bookkeeping are dropped."""

    def test_clean_disconnect_drops_subscriptions(self):
        async def body():
            server = RpcServer(PequodServer())
            await server.start()
            try:
                client = RpcClient("127.0.0.1", server.port)
                await client.connect()
                await client.subscribe("p|", "p}")
                await client.subscribe("q|", "q}")
                assert server.watcher_count() == 2
                await client.close()  # no unsubscribe: just drop the link
                await asyncio.sleep(0.05)
                assert server.watcher_count() == 0
                assert not server._connection_tasks
            finally:
                await server.stop()

        run(body())

    def test_garbage_mid_frame_drops_connection_state(self):
        async def body():
            server = RpcServer(PequodServer())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(protocol.encode_request(0, "subscribe", ["p|", "p}"]))
                await writer.drain()
                frame = await reader.readexactly(4)
                length = int.from_bytes(frame, "big")
                await reader.readexactly(length)  # the subscribe response
                assert server.watcher_count() == 1
                # Unframeable garbage: a frame length beyond MAX_FRAME.
                writer.write(b"\xff\xff\xff\xff not a frame")
                await writer.drain()
                data = await reader.read()
                assert data == b""  # server dropped the connection...
                await asyncio.sleep(0.05)
                assert server.watcher_count() == 0  # ...and its watches
                assert not server._connection_tasks
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            finally:
                await server.stop()

        run(body())

    def test_server_push_after_disconnect_is_inert(self):
        """A write after a watcher vanished must not fault the server."""

        async def body():
            engine_server = PequodServer()
            server = RpcServer(engine_server)
            await server.start()
            try:
                client = RpcClient("127.0.0.1", server.port)
                await client.connect()
                await client.subscribe("p|", "p}")
                await client.close()
                await asyncio.sleep(0.05)
                engine_server.put("p|a|1", "x")  # no watcher: no fault
                assert engine_server.hub.watcher_count() == 0
            finally:
                await server.stop()

        run(body())


# ======================================================================
# The windowed pipelining driver
# ======================================================================
class TestCallWindowed:
    def test_results_in_call_order(self):
        async def body(server, client):
            calls = [("put", [f"p|k|{i:03d}", f"v{i}"]) for i in range(40)]
            calls += [("get", [f"p|k|{i:03d}"]) for i in range(40)]
            results = await client.call_windowed(calls, depth=8)
            assert results[:40] == [True] * 40
            assert results[40:] == [f"v{i}" for i in range(40)]

        run(with_server(body))

    def test_depth_validation_and_empty(self):
        async def body(server, client):
            assert await client.call_windowed([], 4) == []
            with pytest.raises(ValueError):
                await client.call_windowed([("ping", [])], 0)

        run(with_server(body))

    def test_window_error_propagates(self):
        async def body(server, client):
            calls = [("ping", []), ("no_such_method", []), ("ping", [])]
            with pytest.raises(RpcError):
                await client.call_windowed(calls, depth=2)
            assert await client.ping() == "pong"  # connection survives

        run(with_server(body))


class TestReviewRegressions:
    def test_failed_window_stops_issuing_calls(self):
        """After a window fails, late completions must not keep
        feeding the server the remaining calls."""

        async def body(server, client):
            calls = [("ping", []), ("no_such_method", [])]
            calls += [("put", [f"p|late|{i:03d}", "x"]) for i in range(60)]
            with pytest.raises(RpcError):
                await client.call_windowed(calls, depth=2)
            # Give any stray launches time to land, then count: only
            # puts issued before the failure surfaced may exist.
            for _ in range(3):
                await client.call("ping")
            stored = await client.call("count", "p|late|", "p|late}")
            assert stored < 60, f"window kept running: {stored} puts landed"

        run(with_server(body))

    def test_slow_watcher_is_dropped_not_buffered(self):
        """A subscriber that stops reading loses its subscriptions
        instead of growing the server's write buffer forever."""

        async def body():
            engine_server = PequodServer()
            server = RpcServer(engine_server)
            server.MAX_PUSH_BACKLOG = 4096  # tiny cap for the test
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    protocol.encode_request(0, "subscribe", ["p|", "p}"])
                )
                await writer.drain()
                frame = await reader.readexactly(4)
                await reader.readexactly(int.from_bytes(frame, "big"))
                assert server.watcher_count() == 1
                # Flood changes while never reading pushes.  The tiny
                # transport buffer backs up past the cap and the
                # server drops the watcher.
                big = "v" * 1024
                for i in range(4096):
                    engine_server.put(f"p|k|{i:05d}", big)
                    if server.slow_watchers_dropped:
                        break
                    await asyncio.sleep(0)
                assert server.slow_watchers_dropped == 1
                assert engine_server.hub.watcher_count() == 0
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            finally:
                await server.stop()

        run(body())
