"""The disk-backed store: value spill, faulting reads, eviction-spill.

The anti-caching contract under test: spilling moves *values* to
segment files while keys and structure stay resident, reads through a
spilled range fault bytes back from disk with identical results, and
under a memory limit the eviction manager prefers spilling cold
computed ranges over dropping them (a spilled range stays valid — no
recomputation on the next read).
"""

import pytest

from repro import PequodServer
from repro.apps.twip import TIMELINE_JOIN
from repro.store.diskmap import (
    SPILLED_VALUE_SIZE,
    DiskMap,
    DiskMapFactory,
    SpilledValue,
    SpillStore,
)
from repro.store.omap import resolve_map_impl
from repro.store.stats import StoreStats

LONG = "x" * 100  # comfortably past the spill threshold
SHORT = "tiny"  # under SPILLED_VALUE_SIZE: never worth spilling


def disk_server(tmp_path, **kwargs):
    srv = PequodServer(
        subtable_config={"t": 2, "p": 2, "s": 2},
        store_impl="disk",
        data_dir=str(tmp_path / "data"),
        **kwargs,
    )
    srv.add_join(TIMELINE_JOIN)
    return srv


class TestSpillStore:
    def test_spill_and_fault_back(self, tmp_path):
        stats = StoreStats()
        store = SpillStore(str(tmp_path / "spill"), stats=stats)
        store.spill([("k|1", "alpha"), ("k|2", "beta")])
        assert store.read_value("k|1") == "alpha"
        assert store.read_value("k|2") == "beta"
        assert stats.get("persist_spilled_values") == 2
        assert stats.get("persist_spill_reads") == 2
        with pytest.raises(KeyError):
            store.read_value("k|missing")
        store.close()

    def test_respill_newest_wins(self, tmp_path):
        store = SpillStore(str(tmp_path / "spill"))
        store.spill([("k|1", "old")])
        store.spill([("k|1", "new")])
        assert store.read_value("k|1") == "new"
        store.close()


class TestSpilledValue:
    def test_compares_like_its_payload(self, tmp_path):
        store = SpillStore(str(tmp_path / "spill"))
        store.spill([("k|1", "hello"), ("k|2", "hello")])
        a = SpilledValue(store, "k|1")
        b = SpilledValue(store, "k|2")
        assert a == "hello" and a == b
        assert a != "goodbye"
        assert hash(a) == hash("hello")
        assert a.memory_size() == SPILLED_VALUE_SIZE
        store.close()


class TestDiskMapFactory:
    def test_registered_as_disk_impl(self):
        factory = resolve_map_impl("disk")
        assert isinstance(factory, DiskMapFactory)
        tree = factory()
        assert isinstance(tree, DiskMap)
        assert tree.spill is factory.spill_store

    def test_maps_share_one_spill_store(self, tmp_path):
        factory = DiskMapFactory(str(tmp_path / "spill"))
        assert factory().spill is factory().spill
        factory.close()


class TestTableSpill:
    def test_spill_frees_memory_and_reads_survive(self, tmp_path):
        srv = disk_server(tmp_path)
        for i in range(50):
            srv.put(f"p|bob|{i:04d}", LONG)
        before = srv.store.memory_bytes()
        freed = srv.store.spill_all()
        assert freed > 0
        assert srv.store.memory_bytes() == before - freed
        # Structure intact, payloads fault back from disk.
        got = srv.scan("p|bob|", "p|bob}")
        assert len(got) == 50
        assert all(v == LONG for _, v in got)
        srv.close()

    def test_small_values_stay_resident(self, tmp_path):
        srv = disk_server(tmp_path)
        for i in range(20):
            srv.put(f"p|bob|{i:04d}", SHORT)
        assert srv.store.spill_all() == 0
        assert srv.get("p|bob|0003") == SHORT
        srv.close()

    def test_overwrite_after_spill(self, tmp_path):
        srv = disk_server(tmp_path)
        srv.put("p|bob|0001", LONG)
        srv.store.spill_all()
        srv.put("p|bob|0001", "fresh")
        assert srv.get("p|bob|0001") == "fresh"
        srv.close()

    def test_spilled_base_keeps_computed_ranges_valid(self, tmp_path):
        srv = disk_server(tmp_path)
        srv.engine.enable_sharing = False  # plain-string outputs
        srv.put("s|ann|bob", "1")
        for i in range(10):
            srv.put(f"p|bob|{i:04d}", LONG)
        reference = srv.scan("t|ann|", "t|ann}")
        assert len(reference) == 10
        recomputes = srv.stats.get("recomputations")
        assert srv.store.spill_range("p|", "p}") > 0
        assert srv.scan("t|ann|", "t|ann}") == reference
        # Spilling did not invalidate: the range re-read without a
        # recomputation (the whole point of spill-over-evict).
        assert srv.stats.get("recomputations") == recomputes
        srv.close()

    def test_shared_values_spill_only_when_sole_holder(self, tmp_path):
        srv = disk_server(tmp_path)
        srv.put("s|ann|bob", "1")
        for i in range(10):
            srv.put(f"p|bob|{i:04d}", LONG)
        reference = srv.scan("t|ann|", "t|ann}")
        # Value sharing (§4.3): base posts are SharedValues with two
        # holders (base node + timeline copy) — protected from spill.
        assert srv.store.spill_range("p|", "p}") == 0
        # Evicting the timeline drops the copies; the base node is the
        # sole holder left and the payloads become spillable.
        assert srv.eviction.evict_one()
        assert srv.store.spill_range("p|", "p}") > 0
        # Demand recomputation faults the spilled sources back in.
        assert srv.scan("t|ann|", "t|ann}") == reference
        srv.close()


class TestEvictionSpill:
    def test_pressure_spills_before_evicting(self, tmp_path):
        srv = disk_server(tmp_path, memory_limit=6000)
        srv.engine.enable_sharing = False  # plain-string outputs
        srv.put("s|ann|bob", "1")
        for i in range(60):
            srv.put(f"p|bob|{i:04d}", LONG)
            srv.scan("t|ann|", "t|ann}")
        assert srv.eviction.spills > 0
        assert srv.stats.get("spill_evictions") > 0
        # Everything is still readable, faulting from disk as needed.
        got = srv.scan("t|ann|", "t|ann}")
        assert [v for _, v in got] == [LONG] * 60
        srv.close()

    def test_plain_store_never_spills(self):
        srv = PequodServer(memory_limit=1)
        assert not srv.eviction.spill
        srv.put("p|a|1", LONG)
        assert srv.store.supports_spill() is False
        assert srv.store.spill_all() == 0

    def test_invalidation_resets_spilled_flag(self, tmp_path):
        srv = disk_server(tmp_path)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", LONG)
        srv.scan("t|ann|", "t|ann}")
        srv.store.spill_range("t|", "t}")
        srv.remove("s|ann|bob")  # invalidates the computed range
        assert srv.scan("t|ann|", "t|ann}") == []
        srv.close()
