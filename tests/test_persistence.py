"""Durability end to end: recovery, crash injection, the oracle.

The subsystem's contract, tested at the server boundary: every
acknowledged client write survives what the fsync policy promises it
survives — process death for ``always``, graceful shutdown for the
rest — and a recovered server is observationally identical to one that
never stopped.  Computed join output is deliberately *not* persisted;
recovery must recompute it on demand and arrive at the same answer.

The hypothesis property at the bottom is the conformance oracle from
the issue: a random write workload, a crash (or clean shutdown, per the
policy's promise), and a recovery must land byte-identical to an
uninterrupted run — across every ordered-map implementation and every
fsync mode.
"""

import random
import shutil
import signal
import subprocess
import sys
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PequodServer
from repro.chaos import crash_server, torn_wal_tail
from repro.persist.wal import FSYNC_MODES
from repro.store.omap import MAP_IMPLS

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def durable(data_dir, **kwargs) -> PequodServer:
    srv = PequodServer(
        subtable_config={"t": 2, "p": 2, "s": 2},
        data_dir=str(data_dir),
        **kwargs,
    )
    srv.add_join(TIMELINE)
    return srv


def observable(srv) -> dict:
    """Every table's scan — base data plus demand-computed output."""
    return {t: srv.scan(f"{t}|", f"{t}}}") for t in ("p", "s", "t")}


class TestRecovery:
    def test_reopen_restores_state(self, tmp_path):
        srv = durable(tmp_path / "d")
        srv.put("s|ann|bob", "1")
        for i in range(20):
            srv.put(f"p|bob|{i:04d}", f"tweet {i}")
        expected = observable(srv)
        srv.close()
        again = durable(tmp_path / "d")
        assert again.stats.get("persist_recovered_ops") == 21
        assert again.stats.get("persist_recovery_ms") >= 0
        assert observable(again) == expected
        again.close()

    def test_checkpoint_folds_wal_into_segments(self, tmp_path):
        srv = durable(tmp_path / "d")
        for i in range(50):
            srv.put(f"p|bob|{i:04d}", f"v{i}")
        srv.checkpoint()
        assert srv.persist.wal.size == 0
        assert len(srv.persist.segments) == 1
        srv.put("p|bob|9999", "after the checkpoint")
        expected = observable(srv)
        srv.close()
        again = durable(tmp_path / "d")
        assert observable(again) == expected
        assert again.get("p|bob|9999") == "after the checkpoint"
        again.close()

    def test_remove_survives_recovery(self, tmp_path):
        srv = durable(tmp_path / "d")
        srv.put("p|bob|0001", "keep")
        srv.put("p|bob|0002", "drop")
        srv.checkpoint()  # both land in a segment...
        srv.remove("p|bob|0002")  # ...then the WAL tombstones one
        srv.close()
        again = durable(tmp_path / "d")
        assert again.get("p|bob|0001") == "keep"
        assert again.scan("p|", "p}") == [("p|bob|0001", "keep")]
        again.close()

    def test_batches_are_journaled(self, tmp_path):
        srv = durable(tmp_path / "d")
        srv.apply_batch(
            [("p|bob|0001", "one"), ("p|bob|0002", "two")]
        )
        srv.apply_batch([("p|bob|0001", None)])  # batched remove
        srv.close()
        again = durable(tmp_path / "d")
        assert again.scan("p|", "p}") == [("p|bob|0002", "two")]
        again.close()

    def test_computed_output_recomputes_not_recovers(self, tmp_path):
        srv = durable(tmp_path / "d")
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "hello")
        expected = srv.scan("t|ann|", "t|ann}")
        assert expected  # the join produced output
        srv.close()
        again = durable(tmp_path / "d")
        # Only the 2 client writes came back — never the join output.
        assert again.stats.get("persist_recovered_ops") == 2
        executed = again.stats.get("joins_executed")
        assert again.scan("t|ann|", "t|ann}") == expected
        assert again.stats.get("joins_executed") > executed
        again.close()

    def test_fresh_data_dir_recovers_nothing(self, tmp_path):
        srv = durable(tmp_path / "new")
        assert srv.stats.get("persist_recovered_ops") == 0
        srv.close()


class TestCrashInjection:
    def test_fsync_always_survives_hard_crash(self, tmp_path):
        srv = durable(tmp_path / "d", wal_fsync="always")
        srv.put("s|ann|bob", "1")
        for i in range(10):
            srv.put(f"p|bob|{i:04d}", f"v{i}")
        expected = observable(srv)
        assert crash_server(srv) == 0  # every record hit the platter
        again = durable(tmp_path / "d", wal_fsync="always")
        assert observable(again) == expected
        again.close()

    def test_batch_mode_crash_recovers_synced_prefix(self, tmp_path):
        srv = durable(tmp_path / "d", wal_fsync="batch")
        for i in range(10):
            srv.put(f"p|bob|{i:04d}", f"v{i}")
        srv.flush()  # sync point: everything so far is promised
        srv.put("p|bob|9999", "maybe lost")
        crash_server(srv)
        again = durable(tmp_path / "d", wal_fsync="batch")
        # Everything before the sync point is there; the unsynced tail
        # is pessimistically gone (never acknowledged as durable).
        for i in range(10):
            assert again.get(f"p|bob|{i:04d}") == f"v{i}"
        again.close()

    def test_torn_tail_truncates_to_last_intact_record(self, tmp_path):
        srv = durable(tmp_path / "d", wal_fsync="always")
        for i in range(8):
            srv.put(f"p|bob|{i:04d}", f"v{i}")
        srv.close()
        torn = torn_wal_tail(str(tmp_path / "d"), random.Random(42))
        assert torn > 0
        again = durable(tmp_path / "d", wal_fsync="always")
        # The final record was torn mid-frame: its write is lost, every
        # earlier one survives, and the tail was truncated (stat bumps).
        assert again.stats.get("persist_recovered_ops") == 7
        assert again.stats.get("persist_wal_torn_tails") == 1
        for i in range(7):
            assert again.get(f"p|bob|{i:04d}") == f"v{i}"
        # The truncated WAL reopens clean: writes append, close, reopen.
        again.put("p|bob|0007", "rewritten")
        again.close()
        final = durable(tmp_path / "d")
        assert final.get("p|bob|0007") == "rewritten"
        final.close()


# Small key space so puts, overwrites, and removes collide often.
_KEYS = [f"p|bob|{i:02d}" for i in range(6)] + [
    f"s|ann|{u}" for u in ("bob", "liz")
]
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.sampled_from(_KEYS),
            st.text(alphabet="abcxyz", max_size=40),
        ),
        st.tuples(st.just("remove"), st.sampled_from(_KEYS)),
        st.tuples(st.just("checkpoint")),
    ),
    max_size=30,
)


class TestDurabilityOracle:
    """write -> crash -> recover == an uninterrupted run, for every
    ordered-map implementation and every fsync mode."""

    @pytest.mark.parametrize("fsync", FSYNC_MODES)
    @pytest.mark.parametrize("impl", MAP_IMPLS)
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=_OPS)
    def test_crash_recover_matches_uninterrupted(self, impl, fsync, ops):
        data_dir = tempfile.mkdtemp(prefix="pequod-oracle-")
        try:
            srv = durable(data_dir, store_impl=impl, wal_fsync=fsync)
            ref = PequodServer(
                subtable_config={"t": 2, "p": 2, "s": 2}, store_impl=impl
            )
            ref.add_join(TIMELINE)
            for op in ops:
                if op[0] == "put":
                    srv.put(op[1], op[2])
                    ref.put(op[1], op[2])
                elif op[0] == "remove":
                    srv.remove(op[1])
                    ref.remove(op[1])
                else:
                    srv.checkpoint()  # durable-only; a semantic no-op
            expected = observable(ref)
            # Kill the server as hard as the policy promises to survive:
            # `always` dies mid-flight, `batch` after an explicit sync
            # point, `off` only promises a graceful shutdown.
            if fsync == "always":
                crash_server(srv)
            elif fsync == "batch":
                srv.flush()
                crash_server(srv)
            else:
                srv.close()
            recovered = durable(data_dir, store_impl=impl, wal_fsync=fsync)
            assert observable(recovered) == expected
            recovered.close()
            ref.close()
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)


class TestGracefulShutdown:
    def test_sigterm_flushes_and_closes_the_wal(self, tmp_path):
        """`repro serve` + SIGTERM: the handler flushes the WAL before
        exit, so acknowledged writes survive even under fsync=off."""
        data_dir = str(tmp_path / "data")
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--port", "0", "--data-dir", data_dir,
                "--wal-fsync", "off",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.rsplit(":", 1)[1])

            from repro.net.rpc_client import SyncRpcClient

            client = SyncRpcClient("127.0.0.1", port)
            try:
                for i in range(5):
                    client.put(f"p|bob|{i:04d}", f"durable {i}")
            finally:
                client.close()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=15)
        except BaseException:
            proc.kill()
            raise
        assert "shut down cleanly (WAL flushed)" in out
        srv = durable(data_dir)
        assert srv.stats.get("persist_recovered_ops") == 5
        for i in range(5):
            assert srv.get(f"p|bob|{i:04d}") == f"durable {i}"
        srv.close()


class TestPersistMetrics:
    def test_families_render_for_a_durable_server(self, tmp_path):
        srv = durable(tmp_path / "d", store_impl="disk", wal_fsync="batch")
        srv.put("s|ann|bob", "1")
        for i in range(20):
            srv.put(f"p|bob|{i:04d}", "x" * 100)
        srv.checkpoint()
        srv.store.spill_all()
        srv.persist.segments.read("absent|key")  # a bloom negative
        text = srv.metrics_text()
        for family in (
            "repro_persist_wal_bytes",
            "repro_persist_segments",
            "repro_persist_checkpoints_total",
            "repro_persist_recovery_ms",
            "repro_persist_bloom_negatives",
            "repro_persist_segment_probes",
            "repro_persist_spilled_values",
            "repro_persist_spill_segments",
            "repro_persist_flush_seconds_bucket",
        ):
            assert family in text, family
        srv.close()

    def test_plain_server_renders_no_persist_families(self):
        srv = PequodServer()
        assert "persist_" not in srv.metrics_text()
