"""Tests for eviction of computed ranges (paper §2.5)."""

from repro import PequodServer

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)


def populate(srv, users=6, posts=5):
    names = [f"u{i:02d}" for i in range(users)]
    for u in names:
        srv.put(f"s|{u}|star", "1")
    for t in range(posts):
        srv.put(f"p|star|{t:04d}", f"tweet {t} " + "x" * 50)
    for u in names:
        srv.scan(f"t|{u}|", f"t|{u}}}")
    return names


class TestEviction:
    def test_no_limit_never_evicts(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        populate(srv)
        assert srv.eviction.evictions == 0

    def test_eviction_frees_memory(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        populate(srv)
        used = srv.memory_bytes()
        srv.eviction.limit_bytes = used // 2
        srv.eviction.maybe_evict()
        assert srv.memory_bytes() <= used // 2
        assert srv.eviction.evictions > 0

    def test_lru_order_evicts_coldest_first(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        names = populate(srv)
        hot = names[-1]
        srv.scan(f"t|{hot}|", f"t|{hot}}}")  # touch
        srv.eviction.evict_one()
        # The coldest (first materialized, never re-read) went first.
        cold = names[0]
        assert srv.store.count(f"t|{cold}|", f"t|{cold}}}") == 0
        assert srv.store.count(f"t|{hot}|", f"t|{hot}}}") > 0

    def test_evicted_range_recomputed_on_demand(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "hello")
        srv.scan("t|ann|", "t|ann}")
        srv.eviction.evict_one()
        assert srv.store.count("t|ann|", "t|ann}") == 0
        # Reads transparently recompute.
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "hello")]

    def test_eviction_then_write_then_read_is_fresh(self):
        """Updaters into an evicted range are collected, not misapplied."""
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "first")
        srv.scan("t|ann|", "t|ann}")
        srv.eviction.evict_one()
        srv.put("p|bob|0200", "while evicted")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [
            ("t|ann|0100|bob", "first"),
            ("t|ann|0200|bob", "while evicted"),
        ]
        assert srv.stats.get("updaters_collected") >= 1

    def test_eviction_invalidates_dependent_join(self):
        """§2.5: eviction invalidates dependent computed data."""
        srv = PequodServer()
        srv.add_join("mid|<a> = copy base|<a>")
        srv.add_join("top|<a> = copy mid|<a>")
        srv.put("base|x", "v")
        assert srv.scan("top|", "top}") == [("top|x", "v")]
        # Evict both computed levels, then confirm recompute still works.
        while srv.eviction.evict_one():
            pass
        assert srv.store.count("mid|", "mid}") == 0
        assert srv.store.count("top|", "top}") == 0
        assert srv.scan("top|", "top}") == [("top|x", "v")]

    def test_memory_limit_enforced_during_writes(self):
        srv = PequodServer(memory_limit=20_000)
        srv.add_join(TIMELINE)
        populate(srv, users=20, posts=10)
        assert srv.memory_bytes() <= 20_000

    def test_base_data_not_silently_lost(self):
        """Evicting computed ranges never deletes base data."""
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "keep me")
        srv.scan("t|ann|", "t|ann}")
        while srv.eviction.evict_one():
            pass
        assert srv.get("p|bob|0100") == "keep me"
        assert srv.get("s|ann|bob") == "1"
