"""Unit tests for key patterns.

Every test runs twice — once against the compiled match/expand paths
(fixed-width slicing or the anchored regex) and once against the
reference segment walkers — so the two implementations cannot drift.
A hypothesis property test at the bottom drives randomized agreement
directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pattern import (
    Pattern,
    PatternError,
    common_prefix_segments,
    set_pattern_compilation,
)


@pytest.fixture(params=["compiled", "reference"], autouse=True)
def pattern_mode(request):
    previous = set_pattern_compilation(request.param == "compiled")
    yield request.param
    set_pattern_compilation(previous)


class TestParsing:
    def test_literal_and_slots(self):
        p = Pattern("t|<user>|<time>|<poster>")
        assert p.table == "t"
        assert p.slots == ("user", "time", "poster")
        assert [s.is_slot for s in p.segments] == [False, True, True, True]

    def test_pure_literal_pattern(self):
        p = Pattern("config|version")
        assert p.slots == ()
        assert p.table == "config"

    def test_repeated_slot(self):
        p = Pattern("x|<a>|<a>")
        assert p.slots == ("a",)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern("")

    def test_leading_slot_rejected(self):
        with pytest.raises(PatternError):
            Pattern("<user>|x")

    def test_malformed_slot_rejected(self):
        with pytest.raises(PatternError):
            Pattern("t|<user")
        with pytest.raises(PatternError):
            Pattern("t|us<er>")

    def test_equality_and_hash(self):
        assert Pattern("t|<a>") == Pattern("t|<a>")
        assert Pattern("t|<a>") != Pattern("t|<b>")
        assert len({Pattern("t|<a>"), Pattern("t|<a>")}) == 1


class TestMatching:
    def test_match_extracts_slots(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("s|ann|bob") == {"user": "ann", "poster": "bob"}

    def test_match_wrong_literal(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("p|ann|bob") is None

    def test_match_wrong_arity(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("s|ann") is None
        assert p.match("s|ann|bob|extra") is None

    def test_match_repeated_slot_consistency(self):
        p = Pattern("x|<a>|<a>")
        assert p.match("x|v|v") == {"a": "v"}
        assert p.match("x|v|w") is None

    def test_match_interleaved_tag(self):
        p = Pattern("page|<author>|<id>|a")
        assert p.match("page|bob|101|a") == {"author": "bob", "id": "101"}
        assert p.match("page|bob|101|r") is None

    def test_matches_predicate(self):
        p = Pattern("p|<poster>|<time>")
        assert p.matches("p|bob|0100")
        assert not p.matches("q|bob|0100")

    def test_empty_segment_values_match(self):
        p = Pattern("t|<a>|<b>")
        assert p.match("t||x") == {"a": "", "b": "x"}


class TestExpansion:
    def test_expand_full(self):
        p = Pattern("t|<user>|<time>|<poster>")
        slots = {"user": "ann", "time": "0100", "poster": "bob"}
        assert p.expand(slots) == "t|ann|0100|bob"

    def test_expand_missing_slot_raises(self):
        p = Pattern("t|<user>")
        with pytest.raises(PatternError):
            p.expand({})

    def test_expand_extra_slots_ignored(self):
        p = Pattern("t|<user>")
        assert p.expand({"user": "ann", "other": "x"}) == "t|ann"

    def test_expand_prefix_partial(self):
        p = Pattern("t|<user>|<time>|<poster>")
        prefix, complete = p.expand_prefix({"user": "ann"})
        assert prefix == "t|ann|"
        assert not complete

    def test_expand_prefix_complete(self):
        p = Pattern("s|<user>|<poster>")
        prefix, complete = p.expand_prefix({"user": "a", "poster": "b"})
        assert prefix == "s|a|b"
        assert complete

    def test_roundtrip_match_expand(self):
        p = Pattern("page|<author>|<id>|k|<cid>|<commenter>")
        key = "page|bob|101|k|c5|liz"
        assert p.expand(p.match(key)) == key


class TestHelpers:
    def test_slot_positions(self):
        p = Pattern("x|<a>|<b>|<a>")
        assert p.slot_positions("a") == [1, 3]
        assert p.slot_positions("b") == [2]
        assert p.slot_positions("missing") == []

    def test_shared_slots(self):
        a = Pattern("t|<user>|<time>|<poster>")
        b = Pattern("s|<user>|<poster>")
        assert a.shared_slots(b) == ["user", "poster"]

    def test_common_prefix_segments(self):
        pats = [Pattern("page|<a>|x"), Pattern("page|<b>|y")]
        assert common_prefix_segments(pats) == 1
        assert common_prefix_segments([]) == 0


class TestCompiledEquivalence:
    """The compiled paths agree with the reference walkers, by property.

    Keys are generated adversarially: slot-shaped values, mutated
    expansions, stray separators, angle brackets, braces, and NULs.
    """

    PATTERNS = [
        "t|<user>|<time>|<poster>",
        "p|<poster>|<time:4>",
        "x|<a:2>|mid|<a:2>|<b:3>",
        "k|<a>|<a>|z",
        "page|<author>|<id>|c|<cid>|<commenter>",
        "w|<a:1>|<b:1>",
        "config|version",
    ]

    chunk = st.text(
        alphabet="ab|<>{}01\x00}", min_size=0, max_size=6
    )

    @settings(max_examples=300)
    @given(st.sampled_from(PATTERNS), st.lists(chunk, min_size=1, max_size=7))
    def test_match_agrees(self, text, parts):
        p = Pattern(text)
        key = "|".join(parts)
        assert p.match(key) == p.match_reference(key)

    @settings(max_examples=200)
    @given(st.sampled_from(PATTERNS), chunk, st.data())
    def test_mutated_expansions_agree(self, text, noise, data):
        p = Pattern(text)
        slots = {}
        for seg in p.segments:
            if seg.is_slot and seg.slot not in slots:
                width = seg.width if seg.width else 3
                slots[seg.slot] = data.draw(
                    st.text(alphabet="ab0{}", min_size=width, max_size=width)
                )
        key = p.expand_reference(slots)
        assert p.match(key) == p.match_reference(key)
        mutated = noise + key if noise else key[1:]
        assert p.match(mutated) == p.match_reference(mutated)

    @settings(max_examples=150)
    @given(st.sampled_from(PATTERNS), st.data())
    def test_expand_agrees(self, text, data):
        p = Pattern(text)
        slots = {}
        for name in p.slots:
            width = next(
                (s.width for s in p.segments if s.slot == name and s.width),
                None,
            )
            size = width if width else data.draw(st.integers(0, 4))
            slots[name] = data.draw(
                st.text(alphabet="ab0{}|", min_size=size, max_size=size)
            )
        try:
            compiled = p.expand(slots)
        except PatternError:
            compiled = PatternError
        try:
            reference = p.expand_reference(slots)
        except PatternError:
            reference = PatternError
        assert compiled == reference
        assert p.expand_prefix(slots) == p.expand_prefix_reference(slots)

    def test_containing_range_memo_agrees(self):
        p = Pattern("p|<poster>|<time>")
        exact = {"poster": "bob"}
        bounds = {"time": ("0100", None)}
        for _ in range(3):  # memo hits must return the same result
            assert p.containing_range(exact, bounds) == \
                p.containing_range_reference(exact, bounds)
