"""Unit tests for key patterns."""

import pytest

from repro.core.pattern import Pattern, PatternError, common_prefix_segments


class TestParsing:
    def test_literal_and_slots(self):
        p = Pattern("t|<user>|<time>|<poster>")
        assert p.table == "t"
        assert p.slots == ("user", "time", "poster")
        assert [s.is_slot for s in p.segments] == [False, True, True, True]

    def test_pure_literal_pattern(self):
        p = Pattern("config|version")
        assert p.slots == ()
        assert p.table == "config"

    def test_repeated_slot(self):
        p = Pattern("x|<a>|<a>")
        assert p.slots == ("a",)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern("")

    def test_leading_slot_rejected(self):
        with pytest.raises(PatternError):
            Pattern("<user>|x")

    def test_malformed_slot_rejected(self):
        with pytest.raises(PatternError):
            Pattern("t|<user")
        with pytest.raises(PatternError):
            Pattern("t|us<er>")

    def test_equality_and_hash(self):
        assert Pattern("t|<a>") == Pattern("t|<a>")
        assert Pattern("t|<a>") != Pattern("t|<b>")
        assert len({Pattern("t|<a>"), Pattern("t|<a>")}) == 1


class TestMatching:
    def test_match_extracts_slots(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("s|ann|bob") == {"user": "ann", "poster": "bob"}

    def test_match_wrong_literal(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("p|ann|bob") is None

    def test_match_wrong_arity(self):
        p = Pattern("s|<user>|<poster>")
        assert p.match("s|ann") is None
        assert p.match("s|ann|bob|extra") is None

    def test_match_repeated_slot_consistency(self):
        p = Pattern("x|<a>|<a>")
        assert p.match("x|v|v") == {"a": "v"}
        assert p.match("x|v|w") is None

    def test_match_interleaved_tag(self):
        p = Pattern("page|<author>|<id>|a")
        assert p.match("page|bob|101|a") == {"author": "bob", "id": "101"}
        assert p.match("page|bob|101|r") is None

    def test_matches_predicate(self):
        p = Pattern("p|<poster>|<time>")
        assert p.matches("p|bob|0100")
        assert not p.matches("q|bob|0100")

    def test_empty_segment_values_match(self):
        p = Pattern("t|<a>|<b>")
        assert p.match("t||x") == {"a": "", "b": "x"}


class TestExpansion:
    def test_expand_full(self):
        p = Pattern("t|<user>|<time>|<poster>")
        slots = {"user": "ann", "time": "0100", "poster": "bob"}
        assert p.expand(slots) == "t|ann|0100|bob"

    def test_expand_missing_slot_raises(self):
        p = Pattern("t|<user>")
        with pytest.raises(PatternError):
            p.expand({})

    def test_expand_extra_slots_ignored(self):
        p = Pattern("t|<user>")
        assert p.expand({"user": "ann", "other": "x"}) == "t|ann"

    def test_expand_prefix_partial(self):
        p = Pattern("t|<user>|<time>|<poster>")
        prefix, complete = p.expand_prefix({"user": "ann"})
        assert prefix == "t|ann|"
        assert not complete

    def test_expand_prefix_complete(self):
        p = Pattern("s|<user>|<poster>")
        prefix, complete = p.expand_prefix({"user": "a", "poster": "b"})
        assert prefix == "s|a|b"
        assert complete

    def test_roundtrip_match_expand(self):
        p = Pattern("page|<author>|<id>|k|<cid>|<commenter>")
        key = "page|bob|101|k|c5|liz"
        assert p.expand(p.match(key)) == key


class TestHelpers:
    def test_slot_positions(self):
        p = Pattern("x|<a>|<b>|<a>")
        assert p.slot_positions("a") == [1, 3]
        assert p.slot_positions("b") == [2]
        assert p.slot_positions("missing") == []

    def test_shared_slots(self):
        a = Pattern("t|<user>|<time>|<poster>")
        b = Pattern("s|<user>|<poster>")
        assert a.shared_slots(b) == ["user", "poster"]

    def test_common_prefix_segments(self):
        pats = [Pattern("page|<a>|x"), Pattern("page|<b>|y")]
        assert common_prefix_segments(pats) == 1
        assert common_prefix_segments([]) == 0
