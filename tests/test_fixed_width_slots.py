"""Tests for fixed-width slot definitions (§3).

Real Pequod's slot definitions could take "fixed numbers of bytes";
``<time:10>`` declares a slot that only matches 10-character values,
making values at that position prefix-free so containing ranges are
exactly minimal.
"""

import pytest

from repro import PequodServer
from repro.core.pattern import Pattern, PatternError, set_pattern_compilation


@pytest.fixture(params=["compiled", "reference"], autouse=True)
def pattern_mode(request):
    """Fixed-width patterns are exactly the compiled slicing fast path;
    run the whole module against it and against the reference walkers."""
    previous = set_pattern_compilation(request.param == "compiled")
    yield request.param
    set_pattern_compilation(previous)


@pytest.fixture(params=["rbtree", "sortedarray"])
def store_impl(request):
    return request.param


class TestWidthParsing:
    def test_width_parsed(self):
        p = Pattern("p|<poster>|<time:10>")
        assert p.segments[2].width == 10
        assert p.segments[1].width is None

    def test_zero_width_rejected(self):
        with pytest.raises(PatternError):
            Pattern("p|<t:0>")

    def test_conflicting_widths_rejected(self):
        with pytest.raises(PatternError):
            Pattern("x|<a:4>|<a:6>")

    def test_consistent_widths_ok(self):
        p = Pattern("x|<a:4>|<a:4>")
        assert p.slots == ("a",)


class TestWidthMatching:
    def test_exact_width_matches(self):
        p = Pattern("p|<poster>|<time:4>")
        assert p.match("p|bob|0100") == {"poster": "bob", "time": "0100"}

    def test_wrong_width_rejected(self):
        p = Pattern("p|<poster>|<time:4>")
        assert p.match("p|bob|100") is None
        assert p.match("p|bob|00100") is None

    def test_expand_validates_width(self):
        p = Pattern("p|<poster>|<time:4>")
        assert p.expand({"poster": "bob", "time": "0100"}) == "p|bob|0100"
        with pytest.raises(PatternError):
            p.expand({"poster": "bob", "time": "100"})


class TestWidthInJoins:
    def test_join_with_widths_end_to_end(self, store_impl):
        srv = PequodServer(store_impl=store_impl)
        srv.add_join(
            "t|<user>|<time:4>|<poster> = "
            "check s|<user>|<poster> copy p|<poster>|<time:4>"
        )
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "well-formed")
        srv.put("p|bob|99", "malformed time: ignored")
        got = srv.scan("t|ann|", "t|ann}")
        assert got == [("t|ann|0100|bob", "well-formed")]

    def test_widths_keep_bounded_scans_exact(self, store_impl):
        """With fixed widths, a time-bounded scan cannot admit keys
        whose slot values are prefixes of the bound."""
        srv = PequodServer(store_impl=store_impl)
        srv.add_join(
            "t|<user>|<time:4>|<poster> = "
            "check s|<user>|<poster> copy p|<poster>|<time:4>"
        )
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0200", "in window")
        srv.put("p|bob|0050", "before window")
        got = srv.scan("t|ann|0100", "t|ann}")
        assert got == [("t|ann|0200|bob", "in window")]
