"""Cross-module integration tests.

The strongest one: a full Twip workload produces identical timelines on
a single Pequod server and on a distributed cluster (after update
propagation settles) — distribution changes performance, never results.
"""

import asyncio

from repro import PequodServer, SimClock
from repro.apps.social_graph import generate_graph
from repro.apps.twip import TIMELINE_JOIN, format_time
from repro.apps.workload import TwipWorkload
from repro.backing import BackingDatabase, WriteAroundDeployment
from repro.distrib import Cluster
from repro.net.rpc_client import RpcClient
from repro.net.rpc_server import RpcServer


class TestDistributedEquivalence:
    def test_cluster_matches_single_server(self):
        graph = generate_graph(40, 5, seed=13)
        workload = TwipWorkload(graph, total_ops=400, seed=13)
        ops = workload.generate()

        single = PequodServer()
        single.add_join(TIMELINE_JOIN)
        cluster = Cluster(2, 3, ("p", "s"), joins=TIMELINE_JOIN)

        last_seen = {}
        for tick, op in enumerate(ops):
            now = format_time(tick)
            if op.kind == "post":
                key, text = f"p|{op.user}|{now}", f"tweet {tick}"
                single.put(key, text)
                cluster.put(key, text)
            elif op.kind == "subscribe":
                key = f"s|{op.user}|{op.target}"
                single.put(key, "1")
                cluster.put(key, "1")
            else:
                since = (
                    format_time(0) if op.kind == "login"
                    else last_seen.get(op.user, format_time(0))
                )
                lo, hi = f"t|{op.user}|{since}", f"t|{op.user}}}"
                single.scan(lo, hi)
                cluster.scan(op.user, lo, hi)
                last_seen[op.user] = now
        cluster.settle()

        for user in graph.users:
            lo, hi = f"t|{user}|", f"t|{user}}}"
            assert cluster.scan(user, lo, hi) == single.scan(lo, hi), user

    def test_cluster_single_compute_equals_many(self):
        graph = generate_graph(30, 4, seed=17)
        results = []
        for computes in (1, 4):
            cluster = Cluster(2, computes, ("p", "s"), joins=TIMELINE_JOIN)
            for follower, followee in graph.edges:
                cluster.put(f"s|{follower}|{followee}", "1")
            for i, user in enumerate(graph.users):
                cluster.put(f"p|{user}|{format_time(i)}", f"tweet {i}")
            cluster.settle()
            snapshot = {
                u: cluster.scan(u, f"t|{u}|", f"t|{u}}}") for u in graph.users
            }
            results.append(snapshot)
        assert results[0] == results[1]


class TestDeploymentOverRpc:
    def test_full_stack_twip_over_tcp(self):
        """Workload -> RPC client -> TCP -> RPC server -> joins."""

        async def body():
            server = RpcServer(PequodServer(subtable_config={"t": 2}))
            await server.start()
            client = RpcClient("127.0.0.1", server.port)
            await client.connect()
            try:
                await client.add_join(TIMELINE_JOIN)
                graph = generate_graph(20, 3, seed=19)
                await client.call_many(
                    [("put", [f"s|{a}|{b}", "1"]) for a, b in graph.edges]
                )
                await client.call_many(
                    [
                        ("put", [f"p|{u}|{format_time(i)}", f"tweet {i}"])
                        for i, u in enumerate(graph.users)
                    ]
                )
                # Compare against a local server fed identically.
                local = PequodServer()
                local.add_join(TIMELINE_JOIN)
                for a, b in graph.edges:
                    local.put(f"s|{a}|{b}", "1")
                for i, u in enumerate(graph.users):
                    local.put(f"p|{u}|{format_time(i)}", f"tweet {i}")
                for user in graph.users[:8]:
                    remote = await client.scan(f"t|{user}|", f"t|{user}}}")
                    assert remote == local.scan(f"t|{user}|", f"t|{user}}}")
            finally:
                await client.close()
                await server.stop()

        asyncio.new_event_loop().run_until_complete(body())


class TestWriteAroundWithSnapshots:
    def test_snapshot_join_over_database(self):
        """Snapshot joins + DB deployment: staleness bounded by T."""
        clock = SimClock()
        db = BackingDatabase()
        srv = PequodServer(clock=clock)
        srv.add_join(
            "trending|<poster>|<time> = snapshot 60 copy p|<poster>|<time>"
        )
        dep = WriteAroundDeployment(srv, db, base_tables={"p"})
        dep.put("p|bob|0001", "first")
        assert dep.scan("trending|", "trending}") == [
            ("trending|bob|0001", "first")
        ]
        dep.put("p|bob|0002", "second")
        # Within the snapshot window: stale by design.
        assert len(dep.scan("trending|", "trending}")) == 1
        clock.advance(61)
        assert len(dep.scan("trending|", "trending}")) == 2


class TestEndToEndNewpOverTwipServer:
    def test_twip_and_newp_coexist(self):
        """Both applications' join sets share one server peacefully."""
        from repro.apps.newp import AGGREGATE_JOINS, INTERLEAVED_JOINS

        srv = PequodServer()
        srv.add_join(TIMELINE_JOIN)
        srv.add_join(AGGREGATE_JOINS)
        srv.add_join(INTERLEAVED_JOINS)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0100", "tweet")
        srv.put("article|bob|a1", "an article")
        srv.put("vote|bob|a1|ann", "1")
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0100|bob", "tweet")]
        page = dict(srv.scan("page|bob|a1|", "page|bob|a1}"))
        assert page["page|bob|a1|a"] == "an article"
        assert page["page|bob|a1|r"] == "1"
