"""Tests for the binary wire codec."""

import math

import pytest

from repro.net.codec import (
    CodecError,
    decode,
    decode_varint,
    encode,
    encode_varint,
    unzigzag,
    zigzag,
)


class TestVarints:
    def test_small_values_one_byte(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"

    def test_multibyte(self):
        assert encode_varint(128) == b"\x80\x01"
        assert encode_varint(300) == b"\xac\x02"

    def test_roundtrip(self):
        for value in [0, 1, 127, 128, 255, 2**14, 2**35, 2**64]:
            data = encode_varint(value)
            got, offset = decode_varint(data, 0)
            assert got == value
            assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(CodecError):
            decode_varint(b"\x80", 0)

    def test_zigzag_roundtrip(self):
        for value in [0, -1, 1, -2, 2, 2**40, -(2**40), 2**70, -(2**70)]:
            assert unzigzag(zigzag(value)) == value


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**62, -(2**62), 3.14, -0.0, "hello",
         "", "ünïcødé |}", b"", b"\x00\xff", [], {}],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_float_nan(self):
        assert math.isnan(decode(encode(float("nan"))))

    def test_large_int(self):
        big = 12345678901234567890123456789
        assert decode(encode(big)) == big


class TestContainers:
    def test_nested_structures(self):
        value = {
            "rows": [["t|ann|0100|bob", "hello"], ["t|ann|0120|liz", "hi"]],
            "count": 2,
            "meta": {"server": "pequod", "ok": True, "ratio": 0.5},
            "none": None,
        }
        assert decode(encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_deeply_nested(self):
        value = [[[[["deep"]]]]]
        assert decode(encode(value)) == value

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(CodecError):
            encode({1: "x"})

    def test_unencodable_type_rejected(self):
        with pytest.raises(CodecError):
            encode(object())


class TestMalformedInput:
    def test_trailing_bytes(self):
        with pytest.raises(CodecError):
            decode(encode(1) + b"x")

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode(b"Z")

    def test_truncated_string(self):
        data = encode("hello")[:-2]
        with pytest.raises(CodecError):
            decode(data)

    def test_truncated_float(self):
        with pytest.raises(CodecError):
            decode(b"d\x00\x00")

    def test_truncated_list(self):
        data = encode([1, 2, 3])[:-1]
        with pytest.raises(CodecError):
            decode(data)


class TestCompactness:
    def test_small_ints_are_compact(self):
        assert len(encode(5)) == 2  # tag + one varint byte

    def test_string_overhead_is_small(self):
        assert len(encode("abc")) == 5  # tag + len + 3 bytes
