"""Tests for the batched write-propagation subsystem.

Covers the WriteBatch buffer's coalescing semantics, raw store batch
application, the engine's grouped maintenance pass (the property:
batched application is indistinguishable from per-key application,
across eager, lazy, echeck, and aggregate maintenance), pending-log
compaction, the batch RPC round-trip over TCP, and coalesced
subscription propagation through the simulated network.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PequodServer
from repro.core.status import PendingEntry, compact_pending
from repro.core.operators import ChangeKind
from repro.distrib import Cluster
from repro.distrib.node import MSG_UPDATE, MSG_UPDATE_BATCH
from repro.distrib.subscription import UpdateBuffer
from repro.net import protocol
from repro.net.codec import KeyList, decode, encode
from repro.net.rpc_client import RpcClient
from repro.net.rpc_server import RpcServer
from repro.store import OrderedStore, WriteBatch, as_ops
from repro.store.batch import PUT, REMOVE
from repro.store.keys import prefix_upper_bound
from repro.store.values import materialize

TIMELINE = (
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
)
ECHECK_TIMELINE = (
    "t|<user>|<time>|<poster> = echeck s|<user>|<poster> copy p|<poster>|<time>"
)
COUNT_JOIN = "n|<poster> = count p|<poster>|<time>"


def snapshot(server: PequodServer) -> dict:
    """Every stored key/value pair, materialized."""
    out = {}
    for name in sorted(server.store.tables):
        for node in server.store.scan_nodes(name, prefix_upper_bound(name)):
            out[node.key] = materialize(node.value)
    return out


def read_everything(server: PequodServer) -> list:
    rows = []
    for name in sorted(server.store.tables):
        rows.extend(server.scan(name, prefix_upper_bound(name)))
    return rows


# ======================================================================
# The buffer
# ======================================================================
class TestWriteBatchBuffer:
    def test_last_write_wins(self):
        batch = WriteBatch()
        batch.put("p|a|1", "x").put("p|a|1", "y")
        assert len(batch) == 1
        assert batch.coalesced_ops == 1
        (op,) = batch.ops()
        assert (op.kind, op.key, op.value) == (PUT, "p|a|1", "y")

    def test_put_then_remove_nets_to_remove(self):
        batch = WriteBatch().put("p|a|1", "x").remove("p|a|1")
        (op,) = batch.ops()
        assert op.kind == REMOVE
        assert batch.coalesced_ops == 1

    def test_remove_then_put_nets_to_put(self):
        batch = WriteBatch().remove("p|a|1").put("p|a|1", "x")
        (op,) = batch.ops()
        assert (op.kind, op.value) == (PUT, "x")

    def test_ops_sorted_by_key(self):
        batch = WriteBatch().put("p|c|1", "3").put("p|a|1", "1").put("p|b|1", "2")
        assert [op.key for op in batch.ops()] == ["p|a|1", "p|b|1", "p|c|1"]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            WriteBatch().put("", "x")
        with pytest.raises(TypeError):
            WriteBatch().put("p|a|1", 7)

    def test_clear(self):
        batch = WriteBatch().put("p|a|1", "x").put("p|a|1", "y")
        batch.clear()
        assert not batch and batch.coalesced_ops == 0

    def test_apply_without_sink_raises(self):
        with pytest.raises(RuntimeError):
            WriteBatch().put("p|a|1", "x").apply()

    def test_as_ops_accepts_pairs(self):
        ops = as_ops([("p|a|1", "x"), ("p|b|1", None), ("p|a|1", "y")])
        assert [(op.kind, op.key) for op in ops] == [
            (PUT, "p|a|1"),
            (REMOVE, "p|b|1"),
        ]
        assert ops[0].value == "y"

    def test_context_manager_applies_on_exit(self):
        srv = PequodServer()
        with srv.write_batch() as batch:
            batch.put("p|a|1", "x")
        assert srv.get("p|a|1") == "x"


# ======================================================================
# Raw store application
# ======================================================================
class TestStoreApplyBatch:
    def test_matches_per_key_application(self):
        ops = [
            ("p|a|1", "x"), ("p|b|1", "y"), ("p|a|2", "z"),
            ("p|a|1", "x2"), ("s|u|a", "1"),
        ]
        seq = OrderedStore()
        for key, value in ops:
            seq.put(key, value)
        batched = OrderedStore()
        batched.apply_batch(ops)
        assert {
            node.key: materialize(node.value)
            for node in seq.scan_nodes("p", "z")
        } == {
            node.key: materialize(node.value)
            for node in batched.scan_nodes("p", "z")
        }

    def test_changes_carry_net_transitions(self):
        store = OrderedStore()
        store.put("p|a|1", "old")
        store.put("p|b|1", "doomed")
        changes = store.apply_batch(
            [("p|a|1", "new"), ("p|b|1", None), ("p|c|1", "fresh"),
             ("p|zz|9", None)]
        )
        assert changes == [
            ("p|a|1", "old", "new"),
            ("p|b|1", "doomed", None),
            ("p|c|1", None, "fresh"),
            # remove of an absent key produces no change
        ]

    def test_empty_batch_is_noop(self):
        store = OrderedStore()
        assert store.apply_batch(WriteBatch()) == []
        assert store.stats.get("batch_applies") == 0

    def test_sorted_runs_chain_hints(self):
        store = OrderedStore(subtable_config={"p": 2})
        store.apply_batch(
            [(f"p|bob|{i:04d}", "x") for i in range(1, 50)]
        )
        # First insert descends; the other 48 are hinted appends.
        assert store.stats.get("hint_hits") >= 47


# ======================================================================
# Engine semantics: batched == per-key
# ======================================================================
def apply_per_key(server: PequodServer, ops) -> None:
    for key, value in ops:
        if value is None:
            server.remove(key)
        else:
            server.put(key, value)


class TestEngineBatchSemantics:
    def make_pair(self, join):
        a, b = PequodServer(), PequodServer()
        for srv in (a, b):
            srv.add_join(join)
        return a, b

    def warm(self, *servers):
        for srv in servers:
            for user in ("ann", "liz"):
                srv.scan(f"t|{user}|", prefix_upper_bound(f"t|{user}|"))
            srv.scan("n|", "n}")

    @pytest.mark.parametrize("join", [TIMELINE, ECHECK_TIMELINE, COUNT_JOIN])
    def test_mixed_batch_matches_sequential(self, join):
        a, b = self.make_pair(join)
        for srv in (a, b):
            srv.put("s|ann|bob", "1")
            srv.put("s|liz|bob", "1")
            srv.put("p|bob|0001", "seed")
        self.warm(a, b)
        ops = [
            ("p|bob|0002", "x"), ("p|bob|0003", "y"), ("p|bob|0002", "x2"),
            ("s|ann|cat", "1"), ("p|cat|0004", "meow"),
            ("p|bob|0001", None), ("s|liz|bob", None),
        ]
        apply_per_key(a, ops)
        # 7 ops, one superseded within the batch -> 6 net changes.
        assert b.apply_batch(ops) == 6
        assert read_everything(a) == read_everything(b)
        assert snapshot(a) == snapshot(b)

    def test_batch_maintains_warm_timeline_eagerly(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.apply_batch([("p|bob|0001", "t1"), ("p|bob|0002", "t2")])
        # No read in between: outputs must already be materialized.
        assert snapshot(srv)["t|ann|0001|bob"] == "t1"
        assert snapshot(srv)["t|ann|0002|bob"] == "t2"

    def test_intra_batch_coalescing_skips_superseded_fanout(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.scan("t|ann|", "t|ann}")
        srv.stats.reset()
        srv.apply_batch(
            [("p|bob|0001", f"rev {i}") for i in range(10)]
        )
        # One net change: a single updater firing, not ten.
        assert srv.stats.get("updaters_fired") == 1
        assert srv.scan("t|ann|", "t|ann}") == [("t|ann|0001|bob", "rev 9")]

    def test_aggregate_batch_counts_once_per_key(self):
        srv = PequodServer()
        srv.add_join(COUNT_JOIN)
        srv.scan("n|", "n}")
        srv.apply_batch(
            [("p|x|1", "a"), ("p|x|1", "a2"), ("p|x|2", "b"), ("p|y|1", "c")]
        )
        assert srv.get("n|x") == "2"
        assert srv.get("n|y") == "1"

    def test_remove_in_batch_invalidates_check_ranges(self):
        a, b = self.make_pair(TIMELINE)
        for srv in (a, b):
            srv.put("s|ann|bob", "1")
            srv.put("p|bob|0001", "t1")
            srv.scan("t|ann|", "t|ann}")
        ops = [("p|bob|0002", "t2"), ("s|ann|bob", None)]
        apply_per_key(a, ops)
        b.apply_batch(ops)
        assert a.scan("t|ann|", "t|ann}") == b.scan("t|ann|", "t|ann}") == []
        assert snapshot(a) == snapshot(b)


# ======================================================================
# Pending-log compaction
# ======================================================================
class TestPendingCompaction:
    def test_compact_pending_keeps_latest(self):
        class FakeJoin:
            pass

        join = FakeJoin()
        first = PendingEntry(join, 0, "s|a|b", None, "1", ChangeKind.INSERT)
        second = PendingEntry(join, 0, "s|a|b", "1", "2", ChangeKind.INSERT)
        other = PendingEntry(join, 0, "s|a|c", None, "1", ChangeKind.INSERT)
        compacted = compact_pending([first, other, second])
        assert compacted == [second, other]

    def test_log_pending_supersedes_in_place(self):
        from repro.core.status import StatusRange

        sr = StatusRange("t|a", "t|b")
        join = object()
        first = PendingEntry(join, 0, "s|a|b", None, "1", ChangeKind.INSERT)
        second = PendingEntry(join, 0, "s|a|b", "1", "2", ChangeKind.INSERT)
        assert sr.log_pending(first) is True
        assert sr.log_pending(second) is False
        assert sr.pending == [second]

    def test_stale_and_fresh_updaters_log_one_entry(self):
        """After a split + recompute, a stale full-range lazy updater
        and the fresh per-piece updater both cover the same status
        range; their identical partial invalidations must compact to
        one pending entry (one re-execution on the next read)."""
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("s|ann|bob", "1")
        srv.put("p|bob|0001", "t1")
        srv.put("p|bob|0003", "t3")
        srv.scan("t|ann|", "t|ann}")  # full-range lazy updater
        srv.put("s|ann|cat", "1")  # pending via the full-range updater
        srv.scan("t|ann|0002", "t|ann|0004")  # isolates: cover splits
        srv.remove("s|ann|cat")  # complete invalidation everywhere
        srv.scan("t|ann|", "t|ann}")  # recompute installs fresh updaters
        srv.stats.reset()
        srv.put("s|ann|dan", "1")  # fires stale + fresh lazy updaters
        stable = srv.engine.status["t"]
        assert srv.stats.get("pending_compacted") >= 1
        for sr in stable.ranges():
            assert len(sr.pending) <= 1
        assert srv.scan("t|ann|", "t|ann}") == [
            ("t|ann|0001|bob", "t1"),
            ("t|ann|0003|bob", "t3"),
        ]

    def test_batched_duplicate_writes_compact_too(self):
        srv = PequodServer()
        srv.add_join(TIMELINE)
        srv.put("p|bob|0001", "t1")
        srv.put("p|cat|0002", "t2")
        srv.scan("t|ann|", "t|ann}")
        srv.apply_batch(
            [("s|ann|bob", "1"), ("s|ann|cat", "1"), ("s|ann|bob", "2")]
        )
        stable = srv.engine.status["t"]
        pending_lengths = [len(sr.pending) for sr in stable.ranges() if sr.pending]
        assert pending_lengths == [2]  # one per distinct source key
        assert srv.scan("t|ann|", "t|ann}") == [
            ("t|ann|0001|bob", "t1"),
            ("t|ann|0002|cat", "t2"),
        ]


# ======================================================================
# Batch RPC round-trip
# ======================================================================
def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


async def with_server(fn):
    server = RpcServer(PequodServer())
    await server.start()
    client = RpcClient("127.0.0.1", server.port)
    await client.connect()
    try:
        return await fn(server, client)
    finally:
        await client.close()
        await server.stop()


class TestBatchRpc:
    def test_batch_round_trip(self):
        async def body(server, client):
            await client.add_join(TIMELINE)
            applied = await client.apply_batch(
                [
                    ("s|ann|bob", "1"),
                    ("p|bob|0100", "hi"),
                    ("p|bob|0101", "again"),
                    ("p|bob|0101", "again2"),
                ]
            )
            assert applied == 3  # duplicate key coalesced client-side
            rows = await client.scan("t|ann|", "t|ann}")
            assert rows == [
                ("t|ann|0100|bob", "hi"),
                ("t|ann|0101|bob", "again2"),
            ]
            # One request on the wire, not four.
            assert client.requests_sent == 3  # add_join, batch, scan

        run(with_server(body))

    def test_batch_with_removes(self):
        async def body(server, client):
            await client.apply_batch([("p|a|1", "x"), ("p|a|2", "y")])
            applied = await client.apply_batch(
                [("p|a|1", None), ("p|a|3", "z")]
            )
            assert applied == 2
            assert await client.scan("p|", "p}") == [
                ("p|a|2", "y"),
                ("p|a|3", "z"),
            ]

        run(with_server(body))

    def test_empty_batch_sends_nothing(self):
        async def body(server, client):
            assert await client.apply_batch([]) == 0
            assert client.requests_sent == 0

        run(with_server(body))

    def test_malformed_batch_is_an_rpc_error(self):
        from repro.net.rpc_client import RpcError

        async def body(server, client):
            with pytest.raises(RpcError):
                await client.call("batch", ["p|a|1"], ["x", "extra"])
            assert await client.ping() == "pong"

        run(with_server(body))

    def test_method_registered(self):
        assert "batch" in protocol.METHODS


class TestBatchWire:
    def test_keylist_roundtrip_and_compression(self):
        keys = [f"p|bob|{i:010d}" for i in range(200)]
        packed = encode(KeyList(keys))
        assert decode(packed) == keys
        assert len(packed) < len(encode(list(keys))) / 3

    def test_keylist_rejects_non_strings(self):
        from repro.net.codec import CodecError

        with pytest.raises(CodecError):
            encode(KeyList(["ok", 7]))

    def test_bad_shared_prefix_rejected(self):
        from repro.net.codec import CodecError

        # P, count=1, shared=5 with no previous string
        bad = bytes([ord("P"), 1, 5, 0])
        with pytest.raises(CodecError):
            decode(bad)

    def test_encode_decode_batch_args(self):
        pairs = [("p|a|1", "x"), ("p|a|2", None)]
        args = protocol.encode_batch_args(pairs)
        # through the codec, as the RPC layer ships it
        assert protocol.decode_batch_args(decode(encode(args))) == pairs

    def test_decode_batch_args_validates(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch_args([["k"], ["v"], ["extra"]])
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch_args([["k", "k2"], ["v"]])
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch_args([[""], ["v"]])
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_batch_args([["k"], [7]])


# ======================================================================
# Coalesced propagation through the simulated network
# ======================================================================
class TestDistribBatch:
    def make_cluster(self):
        cluster = Cluster(2, 2, ("p", "s"), joins=TIMELINE)
        cluster.put("s|ann|bob", "1")
        cluster.put("s|liz|bob", "1")
        cluster.scan("ann", "t|ann|", "t|ann}")
        cluster.scan("liz", "t|liz|", "t|liz}")
        cluster.settle()
        return cluster

    def test_one_update_message_per_subscriber_per_flush(self):
        cluster = self.make_cluster()
        cluster.net.kind_bytes.clear()
        singles_before = sum(n.updates_sent for n in cluster.base_nodes)
        cluster.put_many(
            [(f"p|bob|{i:010d}", f"tweet {i}") for i in range(25)]
        )
        cluster.settle()
        assert MSG_UPDATE_BATCH in cluster.net.kind_bytes
        assert MSG_UPDATE not in cluster.net.kind_bytes
        batches = sum(n.update_batches_sent for n in cluster.base_nodes)
        updates = sum(n.updates_sent for n in cluster.base_nodes) - singles_before
        # 25 keys mirrored by each of ann's and liz's compute nodes,
        # shipped in one message per subscriber, not one per key.
        assert updates >= 25
        assert batches <= 2

    def test_batched_writes_converge_like_per_key(self):
        batched = self.make_cluster()
        per_key = self.make_cluster()
        writes = [(f"p|bob|{i:010d}", f"tweet {i}") for i in range(12)]
        writes.append(("p|bob|0000000003", None))
        batched.apply_batch(writes)
        for key, value in writes:
            if value is None:
                per_key.remove(key)
            else:
                per_key.put(key, value)
        batched.settle()
        per_key.settle()
        for affinity in ("ann", "liz"):
            assert batched.scan(affinity, "t|", "t}") == per_key.scan(
                affinity, "t|", "t}"
            )

    def test_update_buffer_coalesces_per_key(self):
        buffer = UpdateBuffer()
        buffer.add("s1", ("p|a|1", None, "x", ChangeKind.INSERT))
        buffer.add("s1", ("p|a|1", "x", "y", ChangeKind.UPDATE))
        buffer.add("s2", ("p|a|1", None, "x", ChangeKind.INSERT))
        assert len(buffer) == 2
        assert buffer.coalesced == 1
        flushed = dict(buffer.flush())
        assert flushed["s1"] == [("p|a|1", "x", "y", ChangeKind.UPDATE)]
        assert not buffer


# ======================================================================
# The property: batched application == per-key application
# ======================================================================
write_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("s"),
            st.sampled_from(["ann", "liz"]),
            st.sampled_from(["bob", "cat", "dan"]),
            st.sampled_from(["1", None]),
        ),
        st.tuples(
            st.just("p"),
            st.sampled_from(["bob", "cat", "dan"]),
            st.integers(min_value=0, max_value=9),
            st.sampled_from(["x", "y", None]),
        ),
    ),
    max_size=30,
)


class TestBatchEquivalenceProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=write_ops, chunk=st.integers(min_value=2, max_value=9),
           join=st.sampled_from([TIMELINE, ECHECK_TIMELINE, COUNT_JOIN]))
    def test_store_state_byte_identical(self, ops, chunk, join):
        """Any write sequence, applied per-key vs in WriteBatch chunks
        with reads at chunk boundaries, yields byte-identical store
        state — across eager (copy/echeck), lazy (check), and
        aggregate maintenance."""
        per_key = PequodServer()
        batched = PequodServer()
        for srv in (per_key, batched):
            srv.add_join(join)
            srv.put("s|ann|bob", "1")
            srv.put("p|bob|0000", "seed")
        writes = []
        for op in ops:
            if op[0] == "s":
                _, user, poster, value = op
                writes.append((f"s|{user}|{poster}", value))
            else:
                _, poster, time, value = op
                writes.append((f"p|{poster}|{time:04d}", value))
        for start in range(0, len(writes), chunk):
            piece = writes[start : start + chunk]
            for key, value in piece:
                if value is None:
                    per_key.remove(key)
                else:
                    per_key.put(key, value)
            batched.apply_batch(piece)
            assert read_everything(per_key) == read_everything(batched)
        assert snapshot(per_key) == snapshot(batched)
