"""Unit tests for the interval tree used by updater bookkeeping."""

import random

import pytest

from repro.store.interval_tree import IntervalTree


class TestAddAndQuery:
    def test_empty(self):
        tree = IntervalTree()
        assert len(tree) == 0
        assert tree.stab("x") == []
        assert tree.overlapping("a", "z") == []

    def test_stab_hit_and_miss(self):
        tree = IntervalTree()
        tree.add("b", "d", "payload")
        assert [e.payloads for e in tree.stab("b")] == [["payload"]]
        assert [e.payloads for e in tree.stab("c")] == [["payload"]]
        assert tree.stab("d") == []  # hi is exclusive
        assert tree.stab("a") == []

    def test_empty_interval_rejected(self):
        tree = IntervalTree()
        with pytest.raises(ValueError):
            tree.add("c", "c", "x")
        with pytest.raises(ValueError):
            tree.add("d", "c", "x")

    def test_combining_same_range(self):
        """Same-range updaters combine onto one entry (paper §3.2)."""
        tree = IntervalTree()
        e1 = tree.add("a", "m", "u1")
        e2 = tree.add("a", "m", "u2")
        assert e1 is e2
        assert len(tree) == 1
        assert tree.payload_count() == 2
        assert tree.stab("g")[0].payloads == ["u1", "u2"]

    def test_nested_intervals(self):
        tree = IntervalTree()
        tree.add("a", "z", "outer")
        tree.add("m", "n", "inner")
        hits = {p for e in tree.stab("m") for p in e.payloads}
        assert hits == {"outer", "inner"}
        hits = {p for e in tree.stab("b") for p in e.payloads}
        assert hits == {"outer"}

    def test_overlapping_query(self):
        tree = IntervalTree()
        tree.add("a", "c", 1)
        tree.add("b", "f", 2)
        tree.add("e", "g", 3)
        tree.add("x", "z", 4)
        found = {p for e in tree.overlapping("c", "f") for p in e.payloads}
        assert found == {2, 3}

    def test_overlapping_excludes_touching(self):
        tree = IntervalTree()
        tree.add("a", "c", 1)
        tree.add("c", "e", 2)
        found = {p for e in tree.overlapping("c", "d") for p in e.payloads}
        assert found == {2}

    def test_entries_sorted(self):
        tree = IntervalTree()
        tree.add("m", "n", 1)
        tree.add("a", "b", 2)
        tree.add("a", "z", 3)
        assert list(tree.intervals()) == [("a", "b"), ("a", "z"), ("m", "n")]


class TestRemoval:
    def test_discard_payload(self):
        tree = IntervalTree()
        tree.add("a", "m", "u1")
        tree.add("a", "m", "u2")
        assert tree.discard("a", "m", "u1")
        assert tree.stab("b")[0].payloads == ["u2"]
        assert len(tree) == 1

    def test_discard_last_payload_prunes_interval(self):
        tree = IntervalTree()
        tree.add("a", "m", "u1")
        assert tree.discard("a", "m", "u1")
        assert len(tree) == 0
        assert tree.stab("b") == []

    def test_discard_missing(self):
        tree = IntervalTree()
        tree.add("a", "m", "u1")
        assert not tree.discard("a", "m", "nope")
        assert not tree.discard("x", "y", "u1")

    def test_remove_interval(self):
        tree = IntervalTree()
        tree.add("a", "m", "u1")
        tree.add("a", "m", "u2")
        entry = tree.remove_interval("a", "m")
        assert entry.payloads == ["u1", "u2"]
        assert len(tree) == 0
        assert tree.remove_interval("a", "m") is None

    def test_clear(self):
        tree = IntervalTree()
        tree.add("a", "b", 1)
        tree.clear()
        assert len(tree) == 0


class TestStressAgainstNaive:
    def test_random_against_bruteforce(self):
        rng = random.Random(11)
        tree = IntervalTree()
        naive = []  # list of (lo, hi, payload)
        for step in range(600):
            lo = f"{rng.randrange(100):03d}"
            hi = f"{rng.randrange(100):03d}"
            if lo >= hi:
                continue
            if rng.random() < 0.7 or not naive:
                tree.add(lo, hi, step)
                naive.append((lo, hi, step))
            else:
                victim = rng.choice(naive)
                assert tree.discard(victim[0], victim[1], victim[2])
                naive.remove(victim)
        tree.check_invariants()
        for probe in range(0, 100, 7):
            point = f"{probe:03d}"
            expected = sorted(p for lo, hi, p in naive if lo <= point < hi)
            got = sorted(p for e in tree.stab(point) for p in e.payloads)
            assert got == expected, f"stab({point})"
        for _ in range(40):
            lo = f"{rng.randrange(100):03d}"
            hi = f"{rng.randrange(100):03d}"
            if lo >= hi:
                continue
            expected = sorted(
                p for ilo, ihi, p in naive if ilo < hi and lo < ihi
            )
            got = sorted(p for e in tree.overlapping(lo, hi) for p in e.payloads)
            assert got == expected, f"overlapping({lo},{hi})"
