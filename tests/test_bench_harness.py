"""Tests for the cost model and experiment harness shapes.

These lock in the paper's qualitative results at test-friendly scales;
the full benchmarks run the same code at larger scales.
"""

import pytest

from repro.bench.costmodel import CostModel
from repro.bench.harness import (
    run_figure7,
    run_figure8,
    run_figure9_point,
    run_figure10,
)
from repro.bench.report import crossover_point, format_series, format_table, normalized


class TestCostModel:
    def test_runtime_sums_known_counters(self):
        model = CostModel()
        counters = {"rpcs": 10, "hash_jumps": 100, "unknown_counter": 5}
        expected = 10 * model.unit_costs["rpcs"] + 100 * model.unit_costs["hash_jumps"]
        assert model.runtime_us(counters) == pytest.approx(expected)

    def test_overrides(self):
        model = CostModel(overrides={"rpcs": 100.0})
        assert model.runtime_us({"rpcs": 1}) == 100.0

    def test_breakdown_sorted_desc(self):
        model = CostModel()
        parts = model.breakdown({"rpcs": 1000, "hash_jumps": 1})
        names = list(parts)
        assert names[0] == "rpcs"
        assert parts[names[0]] >= parts[names[-1]]

    def test_dominant(self):
        model = CostModel()
        name, _ = model.dominant({"sql_statements": 50, "rpcs": 1})
        assert name == "sql_statements"
        assert model.dominant({}) == ("nothing", 0.0)


class TestReport:
    def test_format_table(self):
        text = format_table(["Sys", "Time"], [["pequod", 1.5], ["redis", 2.0]])
        assert "pequod" in text and "1.50" in text

    def test_normalized(self):
        assert normalized(2.0, 1.0) == "(2.00x)"
        assert normalized(1.0, 0.0) == "(--)"

    def test_format_series(self):
        text = format_series("x", [1, 2], {"a": [0.1, 0.2], "b": [0.3, 0.4]})
        assert "0.10" in text and "0.40" in text

    def test_crossover(self):
        xs = [0, 1, 2, 3]
        a = [1.0, 2.0, 4.0, 8.0]
        b = [3.0, 3.0, 3.0, 3.0]
        assert crossover_point(xs, a, b) == 2
        assert crossover_point(xs, b, [9, 9, 9, 9]) is None


@pytest.mark.slow
class TestFigure7Shape:
    @pytest.fixture(scope="class")
    def runs(self):
        return run_figure7(n_users=400, mean_follows=12, total_ops=8000)

    def modeled(self, runs):
        return {r.name: r.modeled_us for r in runs}

    def test_pequod_wins(self, runs):
        assert runs[0].name == "pequod"

    def test_paper_ordering(self, runs):
        m = self.modeled(runs)
        assert m["pequod"] < m["redis"] < m["client pequod"]
        assert m["redis"] < m["memcached"]
        assert m["postgresql"] == max(m.values())

    def test_rough_factors(self, runs):
        """The paper's factors: 1.33 / 1.64 / 3.98 / 9.55.  We require
        the right ballpark, not exact values (substrate differs)."""
        m = self.modeled(runs)
        base = m["pequod"]
        assert 1.02 < m["redis"] / base < 2.5
        assert 1.1 < m["client pequod"] / base < 3.0
        assert 1.2 < m["memcached"] / base < 6.0
        assert 3.0 < m["postgresql"] / base < 20.0

    def test_all_systems_ran_same_workload(self, runs):
        # Every backend must have executed the same op volume.
        rpc_floor = 8000
        for r in runs:
            assert r.counters.get("rpcs", 0) >= rpc_floor


@pytest.mark.slow
class TestFigure8Shape:
    @pytest.fixture(scope="class")
    def curves(self):
        pcts = (1, 30, 70, 100)
        data = run_figure8(n_users=120, mean_follows=6, posts=100,
                           active_pcts=pcts)
        return pcts, {k: [r.modeled_us for r in v] for k, v in data.items()}

    def test_dynamic_beats_none_everywhere_measured(self, curves):
        pcts, series = curves
        for i in range(1, len(pcts)):  # beyond the tiniest activity
            assert series["dynamic"][i] < series["none"][i]

    def test_no_materialization_explodes_with_activity(self, curves):
        pcts, series = curves
        assert series["none"][-1] > 3 * series["dynamic"][-1]

    def test_dynamic_beats_full_at_low_activity(self, curves):
        pcts, series = curves
        assert series["dynamic"][0] < series["full"][0]

    def test_full_close_or_better_at_full_activity(self, curves):
        """Paper: full materialization is ~1.08x better at 100%."""
        pcts, series = curves
        assert series["full"][-1] < series["dynamic"][-1] * 1.15


@pytest.mark.slow
class TestFigure9Shape:
    def test_interleaved_wins_at_low_vote_rates(self):
        inter = run_figure9_point(True, 0.1, scale=0.3)
        separate = run_figure9_point(False, 0.1, scale=0.3)
        assert inter.modeled_us < separate.modeled_us

    def test_gap_shrinks_with_vote_rate(self):
        lo_i = run_figure9_point(True, 0.0, scale=0.3).modeled_us
        lo_s = run_figure9_point(False, 0.0, scale=0.3).modeled_us
        hi_i = run_figure9_point(True, 1.0, scale=0.3).modeled_us
        hi_s = run_figure9_point(False, 1.0, scale=0.3).modeled_us
        assert hi_i / hi_s > lo_i / lo_s


@pytest.mark.slow
class TestFigure10Shape:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure10(server_counts=(3, 6, 12), n_users=240,
                            mean_follows=8, total_ops=4000)

    def test_throughput_increases_with_servers(self, points):
        qps = [p.throughput_qps for p in points]
        assert qps[0] < qps[1] < qps[2]

    def test_scaling_is_sublinear(self, points):
        """Paper: 3x for 4x servers — overheads grow with the fleet.

        At hundreds of users (five orders below the paper) hash-placement
        imbalance adds noise, so the bound is generous; the canonical
        benchmark runs the larger scale recorded in EXPERIMENTS.md.
        """
        speedup = points[-1].throughput_qps / points[0].throughput_qps
        servers = points[-1].compute_servers / points[0].compute_servers
        assert 1.5 < speedup <= servers

    def test_subscription_traffic_grows(self, points):
        fracs = [p.subscription_fraction for p in points]
        assert fracs[-1] > fracs[0]
        assert 0.01 < fracs[0] < 0.6

    def test_base_memory_grows_with_servers(self, points):
        """§5.5: duplicate subscription state grows base memory."""
        assert points[-1].base_memory > points[0].base_memory
